//! Ablations of the fabric design choices.
//!
//! Three knobs the paper's architecture leaves open, each measured:
//!
//! * [`run_flit`] — 68 B (CXL 1.1/2.0) vs 256 B (CXL 3.x) flit framing:
//!   big flits cut per-flit switch work for bulk transfers but waste wire
//!   on 64 B operations — a crossover, not a win.
//! * [`run_adaptive`] — adaptive routing over parallel inter-switch paths
//!   vs deterministic single-path routing under saturation.
//! * [`run_credits`] — link-layer credit depth vs bulk throughput: until
//!   the buffer covers the link's bandwidth-delay product, credit-return
//!   latency throttles every transfer (the §3 D#3 "credit allocation"
//!   sizing problem, quantified).

use std::fmt;

use fcc_fabric::endpoint::{Endpoint, PipelinedMemory};
use fcc_fabric::switch::{FabricSwitch, SwitchConfig};
use fcc_fabric::topology::{self, TopologySpec, FAM_BASE};
use fcc_proto::addr::NodeId;
use fcc_proto::flit::FlitMode;
use fcc_proto::link::CreditConfig;
use fcc_proto::phys::PhysConfig;
use fcc_sim::{Engine, SimTime};

use crate::calib;
use crate::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};

fn device() -> Box<dyn Endpoint> {
    Box::new(PipelinedMemory::new(
        SimTime::from_ns(200.0),
        SimTime::from_ns(220.0),
        SimTime::from_ns(20.0),
        1 << 30,
    ))
}

// ---------------------------------------------------------------- flit --

/// Flit-mode ablation outcome.
pub struct FlitAblation {
    /// 16 KiB read throughput, ops/µs: `(flit68, flit256)`.
    pub bulk: (f64, f64),
    /// 64 B read mean latency, ns: `(flit68, flit256)`.
    pub small: (f64, f64),
}

fn run_mode(mode: FlitMode, op_bytes: u32, count: u64, seed: u64) -> (f64, f64) {
    let mut engine = Engine::new(0xAB1 ^ seed);
    let phys = PhysConfig {
        flit_mode: mode,
        ..PhysConfig::omega_like()
    };
    let spec = TopologySpec {
        switch: SwitchConfig {
            phys,
            fwd_latency: SimTime::from_ns(90.0),
            ..SwitchConfig::fabrex_like()
        },
        credit: CreditConfig {
            buffer_flits: 512,
            return_threshold: 16,
            ..CreditConfig::default()
        },
        fha_outstanding: 64,
    };
    let topo = topology::single_switch(&mut engine, spec, 1, vec![device()]);
    let lg = engine.add_component(
        "lg",
        LoadGen::new(LoadCfg {
            fha: topo.hosts[0].fha,
            base: FAM_BASE,
            len: 16 << 20,
            op_bytes,
            write: false,
            window: 8,
            count: Some(count),
            stop_at: SimTime::MAX,
            pattern: AddrPattern::Sequential,
        }),
    );
    engine.post(lg, SimTime::ZERO, StartLoad);
    engine.run_until_idle();
    let g = engine.component::<LoadGen>(lg);
    (g.ops_per_us(), g.latency.summary_ns().mean)
}

/// Runs the flit-mode ablation.
pub fn run_flit(quick: bool) -> FlitAblation {
    run_flit_seeded(quick, 0)
}

/// [`run_flit`] with a caller-supplied RNG seed salt.
pub fn run_flit_seeded(quick: bool, seed: u64) -> FlitAblation {
    let bulk_n = if quick { 200 } else { 1000 };
    let small_n = if quick { 500 } else { 3000 };
    let b68 = run_mode(FlitMode::Flit68, 16384, bulk_n, seed);
    let b256 = run_mode(FlitMode::Flit256, 16384, bulk_n, seed);
    let s68 = run_mode(FlitMode::Flit68, 64, small_n, seed);
    let s256 = run_mode(FlitMode::Flit256, 64, small_n, seed);
    FlitAblation {
        bulk: (b68.0, b256.0),
        small: (s68.1, s256.1),
    }
}

impl fmt::Display for FlitAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ablation — flit framing (same Gen5 x16 wire)")?;
        let rows = vec![
            vec![
                "16 KiB read tput (ops/us)".to_string(),
                format!("{:.2}", self.bulk.0),
                format!("{:.2}", self.bulk.1),
            ],
            vec![
                "64 B read latency (ns)".to_string(),
                format!("{:.0}", self.small.0),
                format!("{:.0}", self.small.1),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["metric", "68 B flits", "256 B flits"], &rows)
        )?;
        writeln!(
            f,
            "big flits win bulk (fewer per-flit switch traversals), small \
             ops pay the padded frame"
        )
    }
}

// ------------------------------------------------------------ adaptive --

/// Adaptive-routing ablation outcome.
pub struct AdaptiveAblation {
    /// Aggregate throughput, ops/µs, single deterministic path.
    pub deterministic: f64,
    /// Aggregate throughput with adaptive spreading over two paths.
    pub adaptive: f64,
}

/// Builds hosts → s0 → {sA | sB} → s1 → {dev0, dev1}: the two relay
/// links are the only shared segment. Deterministic routing sends both
/// write flows through relay A; adaptive routing spreads them.
fn run_paths(adaptive: bool, quick: bool, seed: u64) -> f64 {
    let horizon = if quick {
        SimTime::from_us(100.0)
    } else {
        SimTime::from_us(400.0)
    };
    let mut engine = Engine::new(0xAB2 ^ seed);
    let credit = CreditConfig {
        buffer_flits: 512,
        overcommit: 1.0,
        return_threshold: 32,
        retry_depth: 4096,
    };
    let cfg = SwitchConfig {
        phys: PhysConfig::omega_like(),
        credit,
        fwd_latency: SimTime::from_ns(90.0),
        adaptive,
        ..SwitchConfig::fabrex_like()
    };
    let s0 = engine.add_component("s0", FabricSwitch::new(cfg));
    let sa = engine.add_component("sA", FabricSwitch::new(cfg));
    let sb = engine.add_component("sB", FabricSwitch::new(cfg));
    let s1 = engine.add_component("s1", FabricSwitch::new(cfg));
    let wire = |engine: &mut Engine, a: fcc_sim::ComponentId, b: fcc_sim::ComponentId| {
        let pa = {
            let s = engine.component_mut::<FabricSwitch>(a);
            let p = s.add_port();
            s.connect(p, b);
            p
        };
        let pb = {
            let s = engine.component_mut::<FabricSwitch>(b);
            let p = s.add_port();
            s.connect(p, a);
            p
        };
        (pa, pb)
    };
    let (s0_to_a, a_to_s0) = wire(&mut engine, s0, sa);
    let (s0_to_b, b_to_s0) = wire(&mut engine, s0, sb);
    let (sa_to_s1, s1_to_a) = wire(&mut engine, sa, s1);
    let (sb_to_s1, s1_to_b) = wire(&mut engine, sb, s1);
    // Two devices on s1, one per flow; the address map covers both.
    let mut map = fcc_proto::addr::AddrMap::new();
    let mut dev_nodes = Vec::new();
    for d in 0..2u16 {
        let node = NodeId(100 + d);
        dev_nodes.push(node);
        map.add_direct(
            fcc_proto::addr::AddrRange::new(FAM_BASE + (d as u64) * (1 << 24), 1 << 24),
            node,
        );
    }
    for (d, &node) in dev_nodes.iter().enumerate() {
        let fea = engine.add_component(
            format!("fea{d}"),
            fcc_fabric::adapter::Fea::new(
                node,
                cfg.phys,
                credit,
                Box::new(PipelinedMemory::new(
                    SimTime::from_ns(100.0),
                    SimTime::from_ns(100.0),
                    SimTime::from_ns(10.0),
                    1 << 24,
                )),
            ),
        );
        let s = engine.component_mut::<FabricSwitch>(s1);
        let p = s.add_port();
        s.connect(p, fea);
        s.routing.add_pbr(node, p);
        engine
            .component_mut::<fcc_fabric::adapter::Fea>(fea)
            .connect(s1);
        // Relays forward device traffic toward s1.
        engine
            .component_mut::<FabricSwitch>(sa)
            .routing
            .add_pbr(node, sa_to_s1);
        engine
            .component_mut::<FabricSwitch>(sb)
            .routing
            .add_pbr(node, sb_to_s1);
        // s0 knows both relays as candidates (adaptive picks; the first
        // entry is the deterministic choice).
        {
            let s = engine.component_mut::<FabricSwitch>(s0);
            s.routing.add_pbr(node, s0_to_a);
            s.routing.add_pbr(node, s0_to_b);
        }
    }
    // Hosts on s0, each writing to its own device.
    let mut lgs = Vec::new();
    for h in 0..2u16 {
        let nid = NodeId(1 + h);
        let fha = engine.add_component(
            format!("fha{h}"),
            fcc_fabric::adapter::Fha::new(nid, cfg.phys, credit, map.clone(), 64),
        );
        {
            let s = engine.component_mut::<FabricSwitch>(s0);
            let p = s.add_port();
            s.connect(p, fha);
            s.routing.add_pbr(nid, p);
        }
        engine
            .component_mut::<fcc_fabric::adapter::Fha>(fha)
            .connect(s0);
        // Return routes: completions come back via either relay.
        {
            let s = engine.component_mut::<FabricSwitch>(s1);
            s.routing.add_pbr(nid, s1_to_a);
            s.routing.add_pbr(nid, s1_to_b);
        }
        engine
            .component_mut::<FabricSwitch>(sa)
            .routing
            .add_pbr(nid, a_to_s0);
        engine
            .component_mut::<FabricSwitch>(sb)
            .routing
            .add_pbr(nid, b_to_s0);
        let lg = engine.add_component(
            format!("lg{h}"),
            LoadGen::new(LoadCfg {
                fha,
                base: FAM_BASE + (h as u64) * (1 << 24),
                len: 1 << 22,
                op_bytes: 4096,
                write: true,
                window: 32,
                count: None,
                stop_at: horizon,
                pattern: AddrPattern::Sequential,
            }),
        );
        engine.post(lg, SimTime::ZERO, StartLoad);
        lgs.push(lg);
    }
    engine.run_until_idle();
    lgs.iter()
        .map(|&lg| engine.component::<LoadGen>(lg).completed() as f64 / horizon.as_us())
        .sum()
}

/// Runs the adaptive-routing ablation.
pub fn run_adaptive(quick: bool) -> AdaptiveAblation {
    run_adaptive_seeded(quick, 0)
}

/// [`run_adaptive`] with a caller-supplied RNG seed salt.
pub fn run_adaptive_seeded(quick: bool, seed: u64) -> AdaptiveAblation {
    AdaptiveAblation {
        deterministic: run_paths(false, quick, seed),
        adaptive: run_paths(true, quick, seed),
    }
}

impl AdaptiveAblation {
    /// Throughput gain from path diversity.
    pub fn gain(&self) -> f64 {
        self.adaptive / self.deterministic
    }
}

impl fmt::Display for AdaptiveAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ablation — adaptive routing over parallel paths")?;
        let rows = vec![
            vec![
                "deterministic (one relay)".to_string(),
                format!("{:.2}", self.deterministic),
            ],
            vec![
                "adaptive (two relays)".to_string(),
                format!("{:.2}", self.adaptive),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["routing", "aggregate 4 KiB-read ops/us"], &rows)
        )?;
        writeln!(f, "gain: {:.2}x", self.gain())
    }
}

// ------------------------------------------------------------- credits --

/// Credit-depth ablation outcome: `(buffer_flits, bulk ops/µs)`.
pub struct CreditAblation {
    /// Sweep points.
    pub points: Vec<(u32, f64)>,
}

/// Runs the credit-depth sweep on the long calibrated links.
pub fn run_credits(quick: bool) -> CreditAblation {
    run_credits_seeded(quick, 0)
}

/// [`run_credits`] with a caller-supplied RNG seed salt.
pub fn run_credits_seeded(quick: bool, seed: u64) -> CreditAblation {
    let count = if quick { 150 } else { 800 };
    let mut points = Vec::new();
    for &flits in &[16u32, 128, 1024, 2048] {
        let mut engine = Engine::new(0xAB3 ^ seed);
        let credit = CreditConfig {
            buffer_flits: flits,
            overcommit: 1.0,
            return_threshold: (flits / 8).max(1),
            retry_depth: 4096,
        };
        let spec = TopologySpec {
            switch: SwitchConfig {
                credit,
                ..calib::switch_cfg()
            },
            credit,
            fha_outstanding: 64,
        };
        let topo = topology::single_switch(&mut engine, spec, 1, vec![calib::fam(1 << 30)]);
        let lg = engine.add_component(
            "lg",
            LoadGen::new(LoadCfg {
                fha: topo.hosts[0].fha,
                base: FAM_BASE,
                len: 16 << 20,
                op_bytes: 16384,
                write: false,
                window: 4,
                count: Some(count),
                stop_at: SimTime::MAX,
                pattern: AddrPattern::Sequential,
            }),
        );
        engine.post(lg, SimTime::ZERO, StartLoad);
        engine.run_until_idle();
        points.push((flits, engine.component::<LoadGen>(lg).ops_per_us()));
    }
    CreditAblation { points }
}

impl fmt::Display for CreditAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ablation — link credit depth vs 16 KiB read throughput \
             (180 ns links: BDP ≈ 340 flits; data-response credits get 1/4 \
             of the buffer, so the knee sits near 4x that)"
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|&(f_, t)| vec![f_.to_string(), format!("{t:.3}")])
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(&["buffer (flits)", "ops/us"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_flits_win_bulk_small_ops_prefer_small_flits() {
        let r = run_flit(true);
        assert!(
            r.bulk.1 > r.bulk.0 * 1.5,
            "256B flits should win bulk: {} vs {}",
            r.bulk.0,
            r.bulk.1
        );
        assert!(
            r.small.1 >= r.small.0,
            "64B ops should not get faster with padded flits: {} vs {}",
            r.small.0,
            r.small.1
        );
    }

    #[test]
    fn adaptive_routing_exploits_path_diversity() {
        let r = run_adaptive(true);
        assert!(
            r.gain() > 1.3,
            "two paths should beat one: {} vs {}",
            r.deterministic,
            r.adaptive
        );
    }

    #[test]
    fn throughput_rises_until_bdp_then_flattens() {
        let r = run_credits(true);
        let t16 = r.points[0].1;
        let t1024 = r.points[2].1;
        let t2048 = r.points[3].1;
        assert!(
            t1024 > t16 * 2.0,
            "deeper credits unthrottle bulk: {t16} → {t1024}"
        );
        assert!(
            t2048 <= t1024 * 1.3,
            "beyond the BDP the curve flattens: {t1024} → {t2048}"
        );
    }
}
