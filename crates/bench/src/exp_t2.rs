//! T2 — Table 2: cacheline read/write latency and throughput across the
//! memory hierarchy (L1, L2, local DRAM, remote CXL DIMM).
//!
//! Latency rows use a dependent (pointer-chase-style) stream; throughput
//! rows use an independent stream bounded by the pipeline window. The
//! L1/L2/local tiers come from the Table 2-calibrated analytic hierarchy;
//! the **remote tier runs through the full fabric simulation** (FHA →
//! switch → FEA → FAM) with the calibration of [`crate::calib`].

use std::fmt;

use fcc_cache::core::{AccessPattern, CoreReport, CpuCore, RunDone, StartRun};
use fcc_cache::hierarchy::{HierarchyConfig, MemoryHierarchy};
use fcc_fabric::topology::{self, FAM_BASE};
use fcc_sim::{Component, Ctx, Engine, Msg, SimTime};

use crate::calib;
use crate::capture::Capture;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Tier {
    /// Row label.
    pub name: &'static str,
    /// Dependent-chain read latency (ns).
    pub read_ns: f64,
    /// Dependent-chain write latency (ns).
    pub write_ns: f64,
    /// Independent-stream read throughput (MOPS).
    pub read_mops: f64,
    /// Independent-stream write throughput (MOPS).
    pub write_mops: f64,
    /// The paper's numbers for the row: (read ns, write ns, read MOPS,
    /// write MOPS).
    pub paper: (f64, f64, f64, f64),
}

/// Table 2, reproduced.
pub struct T2Result {
    /// The four tiers.
    pub tiers: Vec<Tier>,
}

struct Sink {
    report: Option<CoreReport>,
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        self.report = Some(msg.downcast::<RunDone>().expect("run done").report);
    }
}

/// Runs one measurement: a fresh engine + topology per run so tiers don't
/// share cache state.
fn measure(seed: u64, remote: bool, pattern: AccessPattern, window: usize) -> CoreReport {
    measure_captured(seed, remote, pattern, window, &mut Capture::disabled(), "")
}

/// [`measure`] with telemetry: remote runs open a `label` scenario so
/// the full FHA → switch → FEA → DRAM hop chain (plus the core's
/// `cache.remote_miss` envelope) lands in the trace.
fn measure_captured(
    seed: u64,
    remote: bool,
    pattern: AccessPattern,
    window: usize,
    cap: &mut Capture,
    label: &str,
) -> CoreReport {
    let mut engine = Engine::new((0x72 ^ seed) + remote as u64);
    let sink = engine.add_component("sink", Sink { report: None });
    let mut core = CpuCore::new(MemoryHierarchy::new(HierarchyConfig::omega_like()), window);
    let mut remote_topo = None;
    if remote {
        let topo = topology::single_switch(
            &mut engine,
            calib::topo_spec(),
            1,
            vec![calib::fam(1 << 30)],
        );
        core.set_fha(topo.hosts[0].fha);
        cap.begin_scenario(label, &mut engine, &topo);
        core.set_trace(cap.sink.track("core"));
        remote_topo = Some(topo);
    }
    let core = engine.add_component("core", core);
    engine.post(
        core,
        SimTime::ZERO,
        StartRun {
            pattern,
            reply_to: sink,
        },
    );
    engine.run_until_idle();
    if let Some(topo) = &remote_topo {
        cap.end_scenario(label, &engine, topo);
    }
    engine
        .component::<Sink>(sink)
        .report
        .clone()
        .expect("run completed")
}

fn dependent(
    base: u64,
    region: u64,
    stride: u64,
    count: u64,
    write: bool,
    warmup: u32,
) -> AccessPattern {
    AccessPattern::Dependent {
        base,
        region,
        stride,
        count,
        write,
        warmup_passes: warmup,
    }
}

fn independent(
    base: u64,
    region: u64,
    stride: u64,
    count: u64,
    write: bool,
    warmup: u32,
) -> AccessPattern {
    AccessPattern::Independent {
        base,
        region,
        stride,
        count,
        write,
        warmup_passes: warmup,
    }
}

/// Runs T2. `quick` shortens op counts (CI use).
pub fn run(quick: bool) -> T2Result {
    run_captured(quick, &mut Capture::disabled())
}

/// Runs T2, feeding telemetry into `cap`. The four remote-tier
/// measurements become scenarios `t2-remote-{rd,wr}-{lat,tput}`; the
/// on-chip tiers never touch the fabric and stay untraced.
pub fn run_captured(quick: bool, cap: &mut Capture) -> T2Result {
    run_captured_seeded(quick, cap, 0)
}

/// [`run_captured`] with a caller-supplied RNG seed salt.
pub fn run_captured_seeded(quick: bool, cap: &mut Capture, seed: u64) -> T2Result {
    let n: u64 = if quick { 2_000 } else { 10_000 };
    let tp: u64 = if quick { 5_000 } else { 30_000 };
    let mut tiers = Vec::new();
    // L1: 16 KiB region, resident after one warmup pass.
    let l1 = (
        measure(seed, false, dependent(0, 16 << 10, 64, n, false, 1), 16),
        measure(seed, false, dependent(0, 16 << 10, 64, n, true, 1), 16),
        measure(seed, false, independent(0, 16 << 10, 64, tp, false, 1), 16),
        measure(seed, false, independent(0, 16 << 10, 64, tp, true, 1), 16),
    );
    tiers.push(Tier {
        name: "L1 Cache",
        read_ns: l1.0.latency.mean,
        write_ns: l1.1.latency.mean,
        read_mops: l1.2.mops(),
        write_mops: l1.3.mops(),
        paper: (5.4, 5.4, 357.4, 355.4),
    });
    // L2: 512 KiB region (beyond 64 KiB L1, within 1 MiB L2).
    let l2 = (
        measure(seed, false, dependent(0, 512 << 10, 64, n, false, 2), 16),
        measure(seed, false, dependent(0, 512 << 10, 64, n, true, 2), 16),
        measure(seed, false, independent(0, 512 << 10, 64, tp, false, 2), 16),
        measure(seed, false, independent(0, 512 << 10, 64, tp, true, 2), 16),
    );
    tiers.push(Tier {
        name: "L2 Cache",
        read_ns: l2.0.latency.mean,
        write_ns: l2.1.latency.mean,
        read_mops: l2.2.mops(),
        write_mops: l2.3.mops(),
        paper: (13.6, 12.5, 143.4, 154.5),
    });
    // Local memory: 16 MiB at page stride defeats both caches.
    let local = (
        measure(
            seed,
            false,
            dependent(0, 16 << 20, 4096, n / 2, false, 0),
            16,
        ),
        measure(
            seed,
            false,
            dependent(0, 16 << 20, 4096, n / 2, true, 0),
            16,
        ),
        measure(
            seed,
            false,
            independent(0, 16 << 20, 4096, tp / 2, false, 0),
            16,
        ),
        measure(
            seed,
            false,
            independent(0, 16 << 20, 4096, tp / 2, true, 0),
            16,
        ),
    );
    tiers.push(Tier {
        name: "Local Memory",
        read_ns: local.0.latency.mean,
        write_ns: local.1.latency.mean,
        read_mops: local.2.mops(),
        write_mops: local.3.mops(),
        paper: (111.7, 119.3, 29.4, 16.9),
    });
    // Remote memory: through the simulated fabric, MLP-limited window.
    let rn = if quick { 300 } else { 2_000 };
    let remote = (
        measure_captured(
            seed,
            true,
            dependent(FAM_BASE, 16 << 20, 4096, rn, false, 0),
            calib::REMOTE_WINDOW,
            cap,
            "t2-remote-rd-lat",
        ),
        measure_captured(
            seed,
            true,
            dependent(FAM_BASE, 16 << 20, 4096, rn, true, 0),
            calib::REMOTE_WINDOW,
            cap,
            "t2-remote-wr-lat",
        ),
        measure_captured(
            seed,
            true,
            independent(FAM_BASE, 16 << 20, 4096, rn * 2, false, 0),
            calib::REMOTE_WINDOW,
            cap,
            "t2-remote-rd-tput",
        ),
        measure_captured(
            seed,
            true,
            independent(FAM_BASE, 16 << 20, 4096, rn * 2, true, 0),
            calib::REMOTE_WINDOW,
            cap,
            "t2-remote-wr-tput",
        ),
    );
    tiers.push(Tier {
        name: "Remote Memory",
        read_ns: remote.0.latency.mean,
        write_ns: remote.1.latency.mean,
        read_mops: remote.2.mops(),
        write_mops: remote.3.mops(),
        paper: (1575.3, 1613.3, 2.5, 2.5),
    });
    T2Result { tiers }
}

impl T2Result {
    /// Remote-to-local read latency ratio (the paper's "nearly 10×").
    pub fn remote_local_ratio(&self) -> f64 {
        self.tiers[3].read_ns / self.tiers[2].read_ns
    }
}

impl fmt::Display for T2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "T2 — Table 2: 64 B read/write latency (ns) and throughput (MOPS)"
        )?;
        let rows: Vec<Vec<String>> = self
            .tiers
            .iter()
            .map(|t| {
                vec![
                    t.name.to_string(),
                    format!("{:.1}/{:.1}", t.read_ns, t.write_ns),
                    format!("{:.1}/{:.1}", t.paper.0, t.paper.1),
                    format!("{:.1}/{:.1}", t.read_mops, t.write_mops),
                    format!("{:.1}/{:.1}", t.paper.2, t.paper.3),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(
                &[
                    "Memory Hierarchy",
                    "Latency R/W (ns)",
                    "paper",
                    "Throughput R/W (MOPS)",
                    "paper"
                ],
                &rows,
            )
        )?;
        writeln!(
            f,
            "remote/local read latency ratio: {:.1}x (paper: ~14x, \"nearly 10x slower\")",
            self.remote_local_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(measured: f64, paper: f64, tol: f64) -> bool {
        (measured - paper).abs() <= paper * tol
    }

    #[test]
    fn table2_shape_holds() {
        let r = run(true);
        for t in &r.tiers {
            assert!(
                within(t.read_ns, t.paper.0, 0.15),
                "{}: read {} vs paper {}",
                t.name,
                t.read_ns,
                t.paper.0
            );
            assert!(
                within(t.write_ns, t.paper.1, 0.15),
                "{}: write {} vs paper {}",
                t.name,
                t.write_ns,
                t.paper.1
            );
            assert!(
                within(t.read_mops, t.paper.2, 0.2),
                "{}: read MOPS {} vs paper {}",
                t.name,
                t.read_mops,
                t.paper.2
            );
            assert!(
                within(t.write_mops, t.paper.3, 0.25),
                "{}: write MOPS {} vs paper {}",
                t.name,
                t.write_mops,
                t.paper.3
            );
        }
        assert!(r.remote_local_ratio() > 10.0, "the paper's 10x gap");
    }
}
