//! E9 — §3 Difference #1: synchronous execution.
//!
//! Two claims measured:
//!
//! * "the throughput of a memory fabric that a core can drive depends on
//!   [...] the depth of the CPU pipeline": sweep the load/store window
//!   and watch remote MOPS scale as `window / RTT` until the device
//!   admission rate caps it.
//! * "the host-side caching structure [...] would transparently
//!   accelerate memory fabric performance": sweep the working set across
//!   the cache boundary and watch remote-region latency collapse to L1/L2
//!   levels when the set fits on chip.

use std::fmt;

use fcc_cache::core::{AccessPattern, CoreReport, CpuCore, RunDone, StartRun};
use fcc_cache::hierarchy::{HierarchyConfig, MemoryHierarchy};
use fcc_fabric::topology::{self, FAM_BASE};
use fcc_sim::{Component, Ctx, Engine, Msg, SimTime};

use crate::calib;

/// E9 outcome.
pub struct E9Result {
    /// `(window, remote MOPS)` sweep.
    pub window_sweep: Vec<(usize, f64)>,
    /// `(working set KiB, mean latency ns)` sweep over a *remote* region.
    pub ws_sweep: Vec<(u64, f64)>,
}

struct Sink {
    report: Option<CoreReport>,
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        self.report = Some(msg.downcast::<RunDone>().expect("done").report);
    }
}

fn run_remote(pattern: AccessPattern, window: usize, seed: u64) -> CoreReport {
    let mut engine = Engine::new(0xE9 ^ seed);
    let sink = engine.add_component("sink", Sink { report: None });
    let topo = topology::single_switch(
        &mut engine,
        calib::topo_spec(),
        1,
        vec![calib::fam(1 << 30)],
    );
    let mut core = CpuCore::new(MemoryHierarchy::new(HierarchyConfig::omega_like()), window);
    core.set_fha(topo.hosts[0].fha);
    let core = engine.add_component("core", core);
    engine.post(
        core,
        SimTime::ZERO,
        StartRun {
            pattern,
            reply_to: sink,
        },
    );
    engine.run_until_idle();
    engine
        .component::<Sink>(sink)
        .report
        .clone()
        .expect("completed")
}

/// Runs E9.
pub fn run(quick: bool) -> E9Result {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> E9Result {
    let count = if quick { 600 } else { 4000 };
    let mut window_sweep = Vec::new();
    for &window in &[1usize, 2, 4, 8, 16, 32] {
        let report = run_remote(
            AccessPattern::Independent {
                base: FAM_BASE,
                region: 64 << 20,
                stride: 4096,
                count,
                write: false,
                warmup_passes: 0,
            },
            window,
            seed,
        );
        window_sweep.push((window, report.mops()));
    }
    let mut ws_sweep = Vec::new();
    for &kib in &[16u64, 256, 4096, 65536] {
        let report = run_remote(
            AccessPattern::Dependent {
                base: FAM_BASE,
                region: kib << 10,
                stride: 64,
                count,
                write: false,
                warmup_passes: if kib <= 4096 { 1 } else { 0 },
            },
            calib::REMOTE_WINDOW,
            seed,
        );
        ws_sweep.push((kib, report.latency.mean));
    }
    E9Result {
        window_sweep,
        ws_sweep,
    }
}

impl fmt::Display for E9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E9 — synchronous execution: pipeline depth and caching")?;
        let rows: Vec<Vec<String>> = self
            .window_sweep
            .iter()
            .map(|&(w, m)| vec![w.to_string(), format!("{m:.2}")])
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(&["load/store window", "remote MOPS"], &rows)
        )?;
        let rows: Vec<Vec<String>> = self
            .ws_sweep
            .iter()
            .map(|&(k, ns)| vec![format!("{k}"), format!("{ns:.1}")])
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(
                &["remote working set (KiB)", "mean access latency (ns)"],
                &rows
            )
        )?;
        writeln!(
            f,
            "paper: per-core fabric throughput is pipeline-window-bound; \
             caches transparently accelerate FAM accesses"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_window_then_saturates() {
        let r = run(true);
        let get = |w: usize| {
            r.window_sweep
                .iter()
                .find(|&&(x, _)| x == w)
                .map(|&(_, m)| m)
                .expect("swept")
        };
        // Linear region: 4x window ≈ 4x MOPS.
        let ratio = get(4) / get(1);
        assert!(
            ratio > 3.0 && ratio < 4.5,
            "window scaling should be near-linear: {ratio}"
        );
        // Saturation: the device admission rate (~8.3 MOPS) caps deep windows.
        let deep = get(32);
        assert!(deep < 9.5, "device cap: {deep}");
        assert!(get(16) <= deep * 1.05 + 0.5);
    }

    #[test]
    fn small_remote_working_sets_are_cache_accelerated() {
        let r = run(true);
        let small = r.ws_sweep[0].1;
        let large = r.ws_sweep.last().expect("swept").1;
        // 16 KiB fits L1: ~5 ns. 64 MiB misses everything: ~1575 ns.
        assert!(small < 20.0, "cached remote set at {small} ns");
        assert!(large > 1000.0, "uncached remote set at {large} ns");
        assert!(large / small > 50.0);
    }
}
