//! T1 — Table 1: the commodity memory fabrics (declarative registry).

use std::fmt;

use fcc_proto::registry::{FabricSpec, COMMODITY_FABRICS};

/// The registry rendered as the paper's Table 1.
pub struct T1Result {
    /// The rows.
    pub rows: Vec<&'static FabricSpec>,
}

/// Runs T1.
pub fn run() -> T1Result {
    T1Result {
        rows: COMMODITY_FABRICS.iter().collect(),
    }
}

impl fmt::Display for T1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "T1 — Table 1: commodity memory fabrics")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.interconnect.to_string(),
                    r.vendor.to_string(),
                    r.active_span(),
                    r.specifications.join(", "),
                    r.demonstrations.join(", "),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(
                &[
                    "Interconnect",
                    "Vendor",
                    "Active Development",
                    "Specification",
                    "Product Demonstration"
                ],
                &rows,
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_all_four_fabrics() {
        let r = run();
        let s = r.to_string();
        for name in ["Gen-Z", "CAPI/OpenCAPI", "CCIX", "CXL"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
