//! F1 — Figure 1: the composable infrastructure, discovered and verified.
//!
//! Builds the paper's Figure 1 topology (two host servers, two fabric
//! switches, two FAM chassis, one FAA chassis), runs the fabric manager's
//! discovery + routing-table fill, then verifies connectivity with a
//! cross-fabric traffic pass from every host to every memory device.

use std::fmt;

use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc_fabric::manager::StartDiscovery;
use fcc_fabric::switch::FabricSwitch;
use fcc_fabric::topology::{self, TopologySpec};
use fcc_sim::{Component, Ctx, Engine, Msg, SimTime};

/// F1 outcome.
pub struct F1Result {
    /// Hosts discovered.
    pub hosts: usize,
    /// Devices discovered.
    pub devices: usize,
    /// Switches.
    pub switches: usize,
    /// PBR entries installed across all switches.
    pub routes: usize,
    /// Verification reads that completed.
    pub verified: usize,
    /// Verification reads attempted.
    pub attempted: usize,
    /// Mean cross-fabric read latency (ns).
    pub mean_read_ns: f64,
}

struct Sink {
    done: Vec<HostCompletion>,
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        self.done
            .push(msg.downcast::<HostCompletion>().expect("hc"));
    }
}

/// Runs F1.
pub fn run() -> F1Result {
    run_seeded(0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(seed: u64) -> F1Result {
    let mut engine = Engine::new(0xF1 ^ seed);
    let topo = topology::figure1(&mut engine, TopologySpec::default());
    let manager = topo.manager.expect("figure1 provides a manager");
    engine.post(manager, SimTime::ZERO, StartDiscovery);
    engine.run_until_idle();
    let routes: usize = topo
        .switches
        .iter()
        .map(|&s| engine.component::<FabricSwitch>(s).routing.pbr_entries())
        .sum();
    // Verification: every host reads 64 B from every memory device.
    let sink = engine.add_component("verify-sink", Sink { done: vec![] });
    let mut attempted = 0;
    let t0 = engine.now();
    for h in &topo.hosts {
        for d in &topo.devices {
            if d.range.len < 4096 {
                continue;
            }
            attempted += 1;
            engine.post(
                h.fha,
                t0,
                HostRequest {
                    op: HostOp::Read {
                        addr: d.range.base,
                        bytes: 64,
                    },
                    tag: attempted as u64,
                    reply_to: sink,
                },
            );
        }
    }
    engine.run_until_idle();
    let done = &engine.component::<Sink>(sink).done;
    let mean_read_ns = if done.is_empty() {
        0.0
    } else {
        done.iter().map(|c| c.latency().as_ns()).sum::<f64>() / done.len() as f64
    };
    F1Result {
        hosts: topo.hosts.len(),
        devices: topo.devices.len(),
        switches: topo.switches.len(),
        routes,
        verified: done.len(),
        attempted,
        mean_read_ns,
    }
}

impl fmt::Display for F1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "F1 — Figure 1 composable infrastructure (discovered)")?;
        writeln!(
            f,
            "  {} host servers, {} switches, {} fabric-attached devices",
            self.hosts, self.switches, self.devices
        )?;
        writeln!(
            f,
            "  fabric manager installed {} PBR routes across the fabric",
            self.routes
        )?;
        writeln!(
            f,
            "  connectivity: {}/{} host→device reads completed, mean {:.0} ns",
            self.verified, self.attempted, self.mean_read_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_discovers_and_routes_everything() {
        let r = run();
        assert_eq!(r.hosts, 2);
        assert_eq!(r.devices, 8);
        assert_eq!(r.switches, 2);
        // Each switch learns all 10 endpoints.
        assert_eq!(r.routes, 20);
        assert_eq!(r.verified, r.attempted, "full connectivity");
        assert!(r.mean_read_ns > 100.0);
    }
}
