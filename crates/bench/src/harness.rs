//! The experiment harness core: scenario registry, single-scenario
//! execution, and the serial/parallel fan-out driver.
//!
//! The `experiments` binary is a thin CLI over this module. Every
//! scenario runs against its own isolated [`fcc_sim::Engine`] and its own
//! per-scenario [`Capture`], producing a self-contained
//! [`ScenarioOutput`]: rendered text, scalar results, a wall-clock/event
//! perf sample, and (when recording) a thread-transferable trace dump
//! plus metrics registry. The driver then assembles outputs **in
//! scenario order**, so every export — human text, results JSON, Chrome
//! trace, metrics JSON — is byte-identical whether scenarios ran on one
//! thread or eight.

use std::fmt::Write as _;
use std::time::Instant;

use fcc_telemetry::{MetricsRegistry, TraceDump};

use crate::capture::Capture;
use crate::runner::par_map;
use crate::{
    exp_abl, exp_e10, exp_e11, exp_e12, exp_e13, exp_e14, exp_e3, exp_e3x, exp_e4, exp_e5, exp_e6,
    exp_e7, exp_e8, exp_e9, exp_f1, exp_nodes, exp_t1, exp_t2,
};

/// Experiment registry: `(id, traced, cost, description)`.
///
/// `cost` is a relative full-run duration estimate (roughly milliseconds
/// on the reference machine) used only for longest-job-first scheduling
/// in the parallel driver; it needs ordering fidelity, not accuracy.
pub const ALL: [(&str, bool, u64, &str); 24] = [
    ("t1", false, 2, "Table 1: commodity memory fabrics registry"),
    (
        "t2",
        true,
        270,
        "Table 2: memory-hierarchy 64 B latency/throughput",
    ),
    (
        "f1",
        false,
        3,
        "fabric discovery, PBR routing, cross-fabric reads",
    ),
    (
        "e3a",
        true,
        580,
        "concurrent 64 B writes to a disaggregated device",
    ),
    (
        "e3b",
        true,
        2600,
        "64 B writes interleaved with 16 KiB bulk traffic",
    ),
    (
        "e3c",
        true,
        420,
        "credit allocation: ramp-up starves bursty flows",
    ),
    (
        "e3d",
        true,
        25,
        "credit-agnostic FIFO scheduling: HOL blocking",
    ),
    (
        "e3e",
        true,
        125,
        "credit starvation back-propagates across switches",
    ),
    (
        "e3x",
        true,
        340,
        "sharded 8-domain chain: 64-tenant interference",
    ),
    (
        "e12",
        true,
        1000,
        "fabric QoS scheduler: tenant isolation at pod scale",
    ),
    (
        "e13",
        true,
        1400,
        "far-memory serving tier: per-tenant SLO under diurnal load",
    ),
    (
        "e14",
        true,
        700,
        "wormhole VC pod: 256-host spine-leaf drains deadlock-free",
    ),
    (
        "e4",
        false,
        420,
        "eTrans managed transfers vs synchronous loads",
    ),
    (
        "e5",
        false,
        30,
        "unified heap placement and migration policies",
    ),
    (
        "e6",
        false,
        5,
        "idempotent tasks vs checkpointing under failures",
    ),
    ("e7", false, 730, "fabric arbiter reservations and fairness"),
    ("e8", false, 15, "baseband pipeline deployment modes"),
    ("e9", false, 1600, "MLP window and working-set sweeps"),
    ("e10", false, 5, "FAA kernel launch and context switching"),
    (
        "e11",
        true,
        70,
        "online composition: hot-add, managed drain, naive yank",
    ),
    ("nodes", false, 35, "memory-node types: expander vs CC-NUMA"),
    (
        "abl-flit",
        false,
        2500,
        "ablation: 68 B vs 256 B flit framing",
    ),
    (
        "abl-adaptive",
        false,
        7400,
        "ablation: adaptive vs deterministic routing",
    ),
    (
        "abl-credits",
        false,
        3500,
        "ablation: link credit-depth sweep",
    ),
];

/// Scalar results of one experiment: `(key, value)` pairs.
pub type Scalars = Vec<(String, f64)>;

/// Looks an id up in the registry.
pub fn registry_entry(id: &str) -> Option<&'static (&'static str, bool, u64, &'static str)> {
    ALL.iter().find(|&&(known, _, _, _)| known == id)
}

/// Wall-clock and event-throughput measurements for one scenario run.
#[derive(Debug, Clone, Copy)]
pub struct PerfSample {
    /// Wall-clock duration of the scenario, in milliseconds.
    pub wall_ms: f64,
    /// Engine events dispatched by the scenario (all of its engines).
    pub events: u64,
}

impl PerfSample {
    /// Events per wall-clock second (0 for a degenerate sample).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.events as f64 / (self.wall_ms / 1000.0)
        } else {
            0.0
        }
    }
}

/// Everything one scenario run produces.
pub struct ScenarioOutput {
    /// The experiment id.
    pub id: String,
    /// The rendered human-readable report (the paper-style tables).
    pub text: String,
    /// Structured scalar results for the JSON export.
    pub scalars: Scalars,
    /// Wall-clock and event-count measurements.
    pub perf: PerfSample,
    /// The scenario's trace buffer, when recording.
    pub trace: Option<TraceDump>,
    /// The scenario's harvested metrics, when recording.
    pub metrics: MetricsRegistry,
}

fn kv(key: &str, v: f64) -> (String, f64) {
    (key.to_string(), v)
}

/// Lowercases and underscores a free-form label into a JSON key segment.
pub fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn put(text: &mut String, what: &dyn std::fmt::Display) {
    // Writing into a String cannot fail.
    let _ = writeln!(text, "{what}");
}

/// Runs one experiment by id, rendering its report into a buffer instead
/// of stdout (so parallel runs cannot interleave output). Returns `None`
/// for an unknown id.
///
/// `cap` is the scenario's own capture; traced experiments emit spans and
/// metrics into it.
pub fn run_one(
    id: &str,
    quick: bool,
    cap: &mut Capture,
    seed: u64,
    shards: usize,
) -> Option<(String, Scalars)> {
    let mut text = String::new();
    text.push_str("================================================================\n");
    let mut s: Scalars = Vec::new();
    match id {
        "t1" => {
            let r = exp_t1::run();
            put(&mut text, &r);
            s.push(kv("fabrics", r.rows.len() as f64));
        }
        "t2" => {
            let r = exp_t2::run_captured_seeded(quick, cap, seed);
            put(&mut text, &r);
            for t in &r.tiers {
                let tier = slug(t.name);
                s.push(kv(&format!("{tier}_read_ns"), t.read_ns));
                s.push(kv(&format!("{tier}_write_ns"), t.write_ns));
                s.push(kv(&format!("{tier}_read_mops"), t.read_mops));
                s.push(kv(&format!("{tier}_write_mops"), t.write_mops));
            }
            s.push(kv("remote_local_ratio", r.remote_local_ratio()));
        }
        "f1" => {
            let r = exp_f1::run_seeded(seed);
            put(&mut text, &r);
            s.push(kv("hosts", r.hosts as f64));
            s.push(kv("devices", r.devices as f64));
            s.push(kv("switches", r.switches as f64));
            s.push(kv("routes", r.routes as f64));
            s.push(kv("verified", r.verified as f64));
            s.push(kv("attempted", r.attempted as f64));
            s.push(kv("mean_read_ns", r.mean_read_ns));
        }
        "e3a" => {
            let r = exp_e3::run_a_captured_seeded(quick, cap, seed);
            put(&mut text, &r);
            s.push(kv("inhost_ns", r.inhost_ns));
            for &(w, ns) in &r.disaggregated {
                s.push(kv(&format!("w{w}_ns"), ns));
            }
            s.push(kv("delta_w8_ns", r.delta_at(8)));
        }
        "e3b" => {
            let r = exp_e3::run_b_captured_seeded(quick, cap, seed);
            put(&mut text, &r);
            s.push(kv("alone_mean_ns", r.alone.mean));
            s.push(kv("alone_p99_ns", r.alone.p99));
            s.push(kv("interfered_mean_ns", r.interfered.mean));
            s.push(kv("interfered_p99_ns", r.interfered.p99));
            s.push(kv("mean_inflation", r.mean_inflation()));
            s.push(kv("p99_inflation", r.p99_inflation()));
        }
        "e3c" => {
            let r = exp_e3::run_c_captured_seeded(quick, cap, seed);
            put(&mut text, &r);
            for o in &r.outcomes {
                let p = slug(o.policy);
                s.push(kv(&format!("{p}_hog_ops_us"), o.hog_tput));
                s.push(kv(&format!("{p}_bursty_ops_us"), o.bursty_tput));
                s.push(kv(&format!("{p}_bursty_p99_ns"), o.bursty_p99));
            }
        }
        "e3d" => {
            let r = exp_e3::run_d_captured_seeded(quick, cap, seed);
            put(&mut text, &r);
            s.push(kv("fifo_fast_ops_us", r.fifo_fast_tput));
            s.push(kv("voq_fast_ops_us", r.voq_fast_tput));
            s.push(kv("fifo_slow_ops_us", r.fifo_slow_tput));
            s.push(kv("hol_factor", r.hol_factor()));
        }
        "e3e" => {
            let r = exp_e3::run_e_captured_seeded(quick, cap, seed);
            put(&mut text, &r);
            s.push(kv("victim_alone_ops_us", r.victim_alone));
            s.push(kv("victim_congested_ops_us", r.victim_congested));
            s.push(kv("hog_ops_us", r.hog_tput));
            s.push(kv("degradation", r.degradation()));
        }
        "e3x" => {
            let r = exp_e3x::run_x_captured_seeded(quick, cap, seed, shards);
            put(&mut text, &r);
            s.push(kv("tenants", r.tenants as f64));
            s.push(kv("victim_ops_us", r.victim_ops_us));
            s.push(kv("victim_fairness", r.victim_fairness));
            s.push(kv("bulk_ops_us", r.bulk_ops_us));
            s.push(kv("hog_ops_us", r.hog_ops_us));
            s.push(kv("total_events", r.total_events as f64));
        }
        "e12" => {
            let r = exp_e12::run_e12_captured_seeded(quick, cap, seed, shards);
            put(&mut text, &r);
            s.push(kv("tenants", r.tenants as f64));
            s.push(kv("victim_p99_idle_ns", r.victim_p99_idle_ns));
            s.push(kv("victim_p99_off_ns", r.victim_p99_off_ns));
            s.push(kv("victim_p99_on_ns", r.victim_p99_on_ns));
            s.push(kv("victim_p999_on_ns", r.victim_p999_on_ns));
            s.push(kv("inflation_off", r.inflation_off()));
            s.push(kv("inflation_on", r.inflation_on()));
            s.push(kv("hog_ops_us_off", r.hog_ops_us_off));
            s.push(kv("hog_ops_us_on", r.hog_ops_us_on));
            s.push(kv("sched_admitted", r.sched_admitted as f64));
            s.push(kv("sched_deferred", r.sched_deferred as f64));
            s.push(kv("ledger_violations", r.ledger_violations as f64));
            s.push(kv(
                "isolation_bounded",
                f64::from(u8::from(r.isolation_bounded())),
            ));
            s.push(kv("total_events", r.total_events as f64));
        }
        "e13" => {
            let r = exp_e13::run_e13_captured_seeded(quick, cap, seed, shards);
            put(&mut text, &r);
            s.push(kv("tenants", r.tenants as f64));
            s.push(kv("requests", r.requests as f64));
            s.push(kv("base_p99_peak_ns", r.base_p99_peak_ns));
            s.push(kv("base_p99_trough_ns", r.base_p99_trough_ns));
            s.push(kv("base_attain_peak", r.base_attain_peak));
            s.push(kv("off_p99_peak_ns", r.off_p99_peak_ns));
            s.push(kv("on_p99_peak_ns", r.on_p99_peak_ns));
            s.push(kv("on_p99_trough_ns", r.on_p99_trough_ns));
            s.push(kv("on_p999_peak_ns", r.on_p999_peak_ns));
            s.push(kv("off_attain_peak", r.off_attain_peak));
            s.push(kv("on_attain_peak", r.on_attain_peak));
            s.push(kv("fcc_speedup_p99", r.fcc_speedup_p99()));
            s.push(kv("sched_recovery_p99", r.sched_recovery_p99()));
            s.push(kv("lost_objects", r.lost_objects as f64));
            s.push(kv("ledger_violations", r.ledger_violations as f64));
            s.push(kv("slo_bounded", f64::from(u8::from(r.slo_bounded()))));
            s.push(kv("total_events", r.total_events as f64));
        }
        "e14" => {
            let r = exp_e14::run_e14_captured_seeded(quick, cap, seed, shards);
            put(&mut text, &r);
            s.push(kv("hosts", r.hosts as f64));
            s.push(kv("switches", r.switches as f64));
            s.push(kv("completed", r.completed as f64));
            s.push(kv("expected", r.expected as f64));
            s.push(kv("makespan_us", r.makespan_us));
            s.push(kv("ops_us", r.ops_us()));
            s.push(kv("deadlock_events", r.deadlock_events as f64));
            s.push(kv("credit_violations", r.credit_violations as f64));
            s.push(kv("audit_findings", r.audit_findings as f64));
            s.push(kv(
                "quiesced_clean",
                f64::from(u8::from(r.quiesced_clean())),
            ));
            s.push(kv("total_events", r.total_events as f64));
        }
        "e4" => {
            let r = exp_e4::run_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("chunks", r.chunks as f64));
            s.push(kv("sync_us", r.sync_us));
            s.push(kv("managed_us", r.managed_us));
            s.push(kv("sync_stall_us", r.sync_stall_us));
            s.push(kv("managed_stall_us", r.managed_stall_us));
            s.push(kv("speedup", r.speedup()));
        }
        "e5" => {
            let r = exp_e5::run_seeded(quick, seed);
            put(&mut text, &r);
            for o in &r.outcomes {
                let p = slug(o.policy);
                s.push(kv(&format!("{p}_mean_ns"), o.mean_ns));
                s.push(kv(&format!("{p}_migrations"), o.migrations as f64));
                s.push(kv(&format!("{p}_bytes_migrated"), o.bytes_migrated as f64));
            }
            s.push(kv("speedup_vs_remote", r.speedup_vs_remote()));
        }
        "e6" => {
            let r = exp_e6::run_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("baseline_us", r.baseline_us));
            for p in &r.points {
                let m = p.mtbf_us.round() as u64;
                s.push(kv(
                    &format!("mtbf{m}us_idem_makespan_us"),
                    p.idempotent.makespan.as_us(),
                ));
                s.push(kv(
                    &format!("mtbf{m}us_ckpt_makespan_us"),
                    p.checkpoint.makespan.as_us(),
                ));
            }
            s.push(kv(
                "naive_clobber_corrupts",
                r.naive_clobber_corrupts as u64 as f64,
            ));
            s.push(kv("versioned_is_safe", r.versioned_is_safe as u64 as f64));
        }
        "e7" => {
            let r = exp_e7::run_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("control_rtt_ns", r.control_rtt_ns));
            s.push(kv("uncoordinated_hog_ops_us", r.uncoordinated.0));
            s.push(kv("uncoordinated_bursty_ops_us", r.uncoordinated.1));
            s.push(kv("arbitrated_hog_ops_us", r.arbitrated.0));
            s.push(kv("arbitrated_bursty_ops_us", r.arbitrated.1));
            s.push(kv("jain_before", r.jain_before));
            s.push(kv("jain_after", r.jain_after));
        }
        "e8" => {
            let r = exp_e8::run_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("ber_15db", r.ber_15db));
            s.push(kv("ber_35db", r.ber_35db));
            for m in &r.modes {
                s.push(kv(&format!("{}_frame_us", slug(m.mode)), m.frame_us));
            }
            s.push(kv("unifabric_with_failure_us", r.unifabric_with_failure_us));
        }
        "e9" => {
            let r = exp_e9::run_seeded(quick, seed);
            put(&mut text, &r);
            for &(w, mops) in &r.window_sweep {
                s.push(kv(&format!("window{w}_mops"), mops));
            }
            for &(ws, ns) in &r.ws_sweep {
                s.push(kv(&format!("ws{ws}kib_ns"), ns));
            }
        }
        "e10" => {
            let r = exp_e10::run_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("fabric_launch_ns", r.fabric_launch_ns));
            s.push(kv("rdma_launch_ns", r.rdma_launch_ns));
            s.push(kv("launch_advantage", r.launch_advantage()));
            s.push(kv("fast_switch_us", r.fast_switch_us));
            s.push(kv("slow_switch_us", r.slow_switch_us));
            s.push(kv("switches", r.switches as f64));
        }
        "e11" => {
            let r = exp_e11::run_captured_seeded(quick, cap, seed);
            put(&mut text, &r);
            s.push(kv("steady_p99_ns", r.steady.p99_ns));
            s.push(kv("managed_p99_ns", r.managed.p99_ns));
            s.push(kv("managed_p99_inflation", r.managed_p99_inflation()));
            s.push(kv("managed_lost_objects", r.managed.lost_objects as f64));
            s.push(kv("managed_deadlocked", r.managed.deadlocked as u64 as f64));
            s.push(kv("managed_epochs", r.managed.epochs as f64));
            s.push(kv("evac_jobs", r.managed.evac_jobs as f64));
            s.push(kv("evac_bytes", r.managed.evac_bytes as f64));
            s.push(kv("yank_lost_objects", r.yank.lost_objects as f64));
            s.push(kv("yank_deadlocked", r.yank.deadlocked as u64 as f64));
        }
        "nodes" => {
            let r = exp_nodes::run_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("expander_ns", r.expander_ns));
            s.push(kv("ccnuma_private_ns", r.ccnuma_private_ns));
            s.push(kv("ccnuma_pingpong_ns", r.ccnuma_pingpong_ns));
            s.push(kv("snoops", r.snoops as f64));
        }
        "abl-flit" => {
            let r = exp_abl::run_flit_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("bulk_flit68_ops_us", r.bulk.0));
            s.push(kv("bulk_flit256_ops_us", r.bulk.1));
            s.push(kv("small_flit68_ns", r.small.0));
            s.push(kv("small_flit256_ns", r.small.1));
        }
        "abl-adaptive" => {
            let r = exp_abl::run_adaptive_seeded(quick, seed);
            put(&mut text, &r);
            s.push(kv("deterministic_ops_us", r.deterministic));
            s.push(kv("adaptive_ops_us", r.adaptive));
        }
        "abl-credits" => {
            let r = exp_abl::run_credits_seeded(quick, seed);
            put(&mut text, &r);
            for &(flits, tput) in &r.points {
                s.push(kv(&format!("credits{flits}_ops_us"), tput));
            }
        }
        _ => return None,
    }
    Some((text, s))
}

/// Runs one scenario end-to-end with its own capture and perf sampling.
///
/// # Panics
///
/// Panics on an unknown id — the driver validates ids up front.
pub fn run_scenario(
    id: &str,
    quick: bool,
    seed: u64,
    record: bool,
    shards: usize,
) -> ScenarioOutput {
    let mut cap = if record {
        Capture::recording()
    } else {
        Capture::disabled()
    };
    // Scenario engines run (and drop) entirely on this thread, so the
    // thread-local dispatch counter delta is exactly this scenario's
    // event count.
    let events_before = fcc_sim::thread_events_dispatched();
    let started = Instant::now();
    let Some((text, scalars)) = run_one(id, quick, &mut cap, seed, shards) else {
        panic!("unknown experiment id: {id}");
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let events = fcc_sim::thread_events_dispatched() - events_before;
    ScenarioOutput {
        id: id.to_string(),
        text,
        scalars,
        perf: PerfSample { wall_ms, events },
        trace: cap.sink.into_dump(),
        metrics: cap.metrics,
    }
}

/// Runs `ids` across up to `jobs` threads (1 = serial, on the caller's
/// thread), returning outputs in `ids` order. `shards` is the worker
/// fan-out handed to sharded-executor scenarios (currently `e3x`);
/// engine-per-scenario experiments ignore it. Exports are byte-identical
/// for any `(jobs, shards)` combination.
///
/// Scenarios share nothing — each gets its own `Engine`s, RNG streams
/// (derived from `seed`), and capture — so the only cross-scenario state
/// is the deterministic assembly performed by the caller.
pub fn run_ids(
    ids: &[String],
    quick: bool,
    seed: u64,
    jobs: usize,
    record: bool,
    shards: usize,
) -> Vec<ScenarioOutput> {
    let items: Vec<String> = ids.to_vec();
    par_map(
        items,
        jobs,
        |_, id| registry_entry(id).map_or(0, |&(_, _, cost, _)| cost),
        move |_, id| run_scenario(&id, quick, seed, record, shards),
    )
}

/// Renders scalar results as one JSON object keyed by experiment id.
/// Non-finite values (shape-dependent NaNs) render as `null` so the
/// output is always valid JSON. Timing never appears here — this export
/// is deterministic and diffable.
pub fn results_json(results: &[(String, Scalars)]) -> String {
    let mut out = String::from("{\n");
    for (i, (id, scalars)) in results.iter().enumerate() {
        out.push_str(&format!("  \"{id}\": {{\n"));
        for (j, (k, v)) in scalars.iter().enumerate() {
            let val = if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            };
            out.push_str(&format!("    \"{k}\": {val}"));
            out.push_str(if j + 1 < scalars.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Renders per-scenario perf samples as a JSON object keyed by id.
pub fn perf_json(entries: &[(String, PerfSample)]) -> String {
    let mut out = String::from("{\n");
    for (i, (id, perf)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "  \"{id}\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}}}",
            perf.wall_ms,
            perf.events,
            perf.events_per_sec()
        ));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Renders the committed-baseline document: the deterministic scalar
/// results plus a `"_perf"` section holding the wall-clock baseline that
/// `scripts/bench_gate.sh` compares against. The underscore keeps the
/// perf key from colliding with (and sorting into) the experiment ids.
pub fn baseline_json(results: &[(String, Scalars)], perf: &[(String, PerfSample)]) -> String {
    let mut out = results_json(results);
    // Splice `"_perf"` in before the closing brace.
    out.truncate(out.trim_end().len() - 1);
    while out.ends_with(['\n', ' ']) {
        out.pop();
    }
    if !results.is_empty() {
        out.push(',');
    }
    out.push_str("\n  \"_perf\": ");
    let perf_obj = perf_json(perf);
    for (i, line) in perf_obj.lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_known() {
        let mut ids: Vec<&str> = ALL.iter().map(|&(id, _, _, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
        assert!(registry_entry("e3b").is_some());
        assert!(registry_entry("nope").is_none());
    }

    #[test]
    fn run_one_rejects_unknown_ids() {
        let mut cap = Capture::disabled();
        assert!(run_one("not-an-experiment", true, &mut cap, 0, 1).is_none());
    }

    #[test]
    fn quick_scenario_produces_text_scalars_and_perf() {
        let out = run_scenario("t1", true, 0, false, 1);
        assert_eq!(out.id, "t1");
        assert!(out.text.contains("======"));
        assert!(!out.scalars.is_empty());
        assert!(out.perf.wall_ms >= 0.0);
        assert!(out.trace.is_none(), "not recording");
    }

    #[test]
    fn traced_quick_scenario_yields_a_dump() {
        let out = run_scenario("e3d", true, 7, true, 1);
        let dump = out.trace.expect("recording scenario dumps");
        assert!(!dump.processes.is_empty());
        assert!(out.perf.events > 0, "a simulation dispatched events");
    }
}
