//! E14 — a 256-host spine-leaf pod on the wormhole virtual-channel
//! switch core, driven to quiescence with zero deadlocks.
//!
//! The headline scenario for the wormhole upgrade
//! ([`fcc_fabric::switch::QueueDiscipline::Wormhole`]): eight spine
//! domains, four leaves per spine, eight hosts and one FAM device per
//! leaf — 256 hosts, 40 switches, built by the pod generator
//! ([`fcc_fabric::pods::sharded_pod`]) with every switch-to-switch link
//! under per-VC credit flow control. Every host streams fixed-count
//! 1 KiB writes to a device homed under a *different* spine, so every
//! worm climbs its leaf's up-links, crosses a spine, and descends — the
//! all-to-all pattern that deadlocks naive wormhole fabrics. The run
//! must reach quiescence (every op completes), with zero deadlock
//! reports, zero VC credit violations, and clean ledger audits — the
//! empirical face of the escape-VC acyclicity proof `check-routing`
//! establishes ([`fcc_verify`-style], see DESIGN.md).
//!
//! Like E3x, the scenario always runs on the sharded executor with one
//! shard per spine domain; `shards` picks only the worker-thread
//! fan-out, so results and telemetry exports are byte-identical across
//! `--shards {1,2,4,8}` (the CI determinism matrix).
//!
//! [`fcc_verify`-style]: crate::harness

use std::fmt;

use fcc_fabric::audit_topology;
use fcc_fabric::credit::AllocPolicy;
use fcc_fabric::pods::{sharded_pod, PodKind, PodSpec};
use fcc_fabric::switch::{FabricSwitch, QueueDiscipline};
use fcc_fabric::wormhole::VcConfig;
use fcc_sim::{ShardedEngine, SimTime};
use fcc_telemetry::{record_deadlock, TraceSink};

use crate::capture::Capture;
use crate::exp_e3::{fabrex_device, fabrex_spec};
use crate::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};

/// Spine switches = shard domains of the executor.
pub const DOMAINS: usize = 8;
/// One-way latency of each cross-spine cable (the lookahead).
pub const CROSS_LATENCY_NS: f64 = 200.0;
/// Per-op transfer size: 16 data flits + header per worm at 68 B flits.
const OP_BYTES: u32 = 1024;

/// E14 outcome.
pub struct E14Result {
    /// Hosts in the pod (256 at full scale).
    pub hosts: usize,
    /// Switches in the pod (spines + leaves).
    pub switches: usize,
    /// Writes completed across all hosts.
    pub completed: u64,
    /// Writes every host was asked to issue, summed.
    pub expected: u64,
    /// Simulated time at quiescence (µs): the slowest domain's clock.
    pub makespan_us: f64,
    /// Domains whose engine reported a deadlock (must be 0).
    pub deadlock_events: u64,
    /// VC credit-conservation violations across all switches (must be 0).
    pub credit_violations: u64,
    /// Credit/ledger audit findings at quiescence (must be 0).
    pub audit_findings: u64,
    /// Events dispatched across all shard engines (deterministic).
    pub total_events: u64,
}

impl E14Result {
    /// Aggregate write throughput (ops/µs) over the makespan.
    pub fn ops_us(&self) -> f64 {
        if self.makespan_us > 0.0 {
            self.completed as f64 / self.makespan_us
        } else {
            0.0
        }
    }

    /// Whether the pod drained every op without deadlock or credit loss.
    pub fn quiesced_clean(&self) -> bool {
        self.completed == self.expected
            && self.deadlock_events == 0
            && self.credit_violations == 0
            && self.audit_findings == 0
    }
}

/// Runs E14 with one worker thread.
pub fn run_e14(quick: bool) -> E14Result {
    run_e14_captured_seeded(quick, &mut Capture::disabled(), 0, 1)
}

/// Runs E14, feeding telemetry into `cap`, with `shards` worker threads.
///
/// Quick mode shrinks the pod to one leaf per spine and four hosts per
/// leaf (32 hosts) and trims the per-host op count; the topology family,
/// VC shape, and traffic pattern are unchanged.
pub fn run_e14_captured_seeded(
    quick: bool,
    cap: &mut Capture,
    seed: u64,
    shards: usize,
) -> E14Result {
    let (leaves_per_spine, hosts_per_edge, ops) = if quick { (1, 4, 8u64) } else { (4, 8, 24u64) };
    let mut sharded = ShardedEngine::new(0xE14 ^ seed, DOMAINS);
    let mut topo = fabrex_spec(QueueDiscipline::Wormhole, AllocPolicy::Fair);
    topo.switch.adaptive = true;
    let spec = PodSpec {
        kind: PodKind::SpineLeaf {
            spines: DOMAINS,
            leaves_per_spine,
        },
        topo,
        vc: VcConfig::default(),
        hosts_per_edge,
        devices_per_edge: 1,
        cross_latency: SimTime::from_ns(CROSS_LATENCY_NS),
    };
    let plan = spec.plan();
    let specs = plan.domain_specs(|_, _| fabrex_device());
    let (plan, fabric) = sharded_pod(&mut sharded, &spec, specs);
    // Per-domain trace sinks, re-interned in domain order after the run.
    let mut sinks: Vec<TraceSink> = Vec::new();
    if cap.is_enabled() {
        for (d, topo) in fabric.domains.iter().enumerate() {
            let sink = TraceSink::recording();
            sink.begin_process(&format!("e14-d{d}"));
            topo.enable_tracing(sharded.engine_mut(d), &sink);
            sinks.push(sink);
        }
    }
    // Load: host `gh` writes a fixed count of 1 KiB ops to the device of
    // a rotating *remote* spine group, so all traffic is leaf-spine-leaf
    // and every spine carries worms in both directions.
    let mut loads = Vec::new();
    let devices_per_domain = leaves_per_spine; // one device per leaf
    for (gh, (d, host)) in fabric.all_hosts().enumerate() {
        let td = (d + 1 + gh % (DOMAINS - 1)) % DOMAINS;
        let dev = &fabric.domains[td].devices[gh % devices_per_domain];
        let cfg = LoadCfg {
            fha: host.fha,
            base: dev.range.base,
            len: 1 << 20,
            op_bytes: OP_BYTES,
            write: true,
            window: 4,
            count: Some(ops),
            stop_at: SimTime::from_us(1_000_000.0),
            pattern: AddrPattern::Sequential,
        };
        let engine = sharded.engine_mut(d);
        let lg = engine.add_component(format!("load-h{gh}"), LoadGen::new(cfg));
        engine.post(lg, SimTime::ZERO, StartLoad);
        loads.push((d, lg));
    }
    sharded.run(shards);
    // Deterministic harvest, in domain order.
    let mut deadlock_events = 0u64;
    let mut credit_violations = 0u64;
    let mut audit_findings = 0u64;
    let mut makespan = SimTime::ZERO;
    let mut sinks = sinks.into_iter();
    for d in 0..DOMAINS {
        if let Some(sink) = sinks.next() {
            if let Some(dump) = sink.into_dump() {
                cap.sink.absorb(dump);
            }
        }
        let engine = sharded.engine(d);
        if cap.is_enabled() {
            fabric.domains[d].collect_metrics(engine, &mut cap.metrics, &format!("e14-d{d}."));
        }
        if let Some(report) = engine.deadlock_report() {
            deadlock_events += 1;
            record_deadlock(&cap.sink, &mut cap.metrics, &report, engine.now());
        }
        for &sw in &fabric.domains[d].switches {
            credit_violations += engine.component::<FabricSwitch>(sw).vc_violations();
        }
        audit_findings += audit_topology(engine, &fabric.domains[d]).findings.len() as u64;
        makespan = makespan.max(engine.now());
    }
    let completed: u64 = loads
        .iter()
        .map(|&(d, lg)| sharded.engine(d).component::<LoadGen>(lg).completed())
        .sum();
    E14Result {
        hosts: loads.len(),
        switches: plan.switches.len(),
        completed,
        expected: loads.len() as u64 * ops,
        makespan_us: makespan.as_us(),
        deadlock_events,
        credit_violations,
        audit_findings,
        total_events: sharded.total_events(),
    }
}

impl fmt::Display for E14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E14 — {}-host spine-leaf wormhole pod, {} switches across {DOMAINS} domains",
            self.hosts, self.switches
        )?;
        let rows = vec![
            vec![
                "writes completed".to_string(),
                format!("{}/{}", self.completed, self.expected),
            ],
            vec![
                "makespan (us)".to_string(),
                format!("{:.1}", self.makespan_us),
            ],
            vec![
                "throughput (ops/us)".to_string(),
                format!("{:.2}", self.ops_us()),
            ],
            vec![
                "deadlock events".to_string(),
                format!("{}", self.deadlock_events),
            ],
            vec![
                "vc credit violations".to_string(),
                format!("{}", self.credit_violations),
            ],
            vec![
                "ledger audit findings".to_string(),
                format!("{}", self.audit_findings),
            ],
        ];
        write!(f, "{}", crate::fmt_table(&["metric", "value"], &rows))?;
        writeln!(
            f,
            "{} events — every cross-spine worm drained through escape-VC \
             routing with conserved credits",
            self.total_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `shards` selects worker threads, never the decomposition: scalar
    /// results and event counts are identical for any fan-out.
    #[test]
    fn results_identical_across_worker_counts() {
        let base = run_e14_captured_seeded(true, &mut Capture::disabled(), 7, 1);
        for workers in [2, 4, 8] {
            let r = run_e14_captured_seeded(true, &mut Capture::disabled(), 7, workers);
            assert_eq!(r.total_events, base.total_events, "workers={workers}");
            assert_eq!(r.completed, base.completed);
            assert_eq!(r.makespan_us, base.makespan_us);
        }
    }

    /// The pod drains completely: no deadlock, no credit loss, audits
    /// clean — the runtime counterpart of `check-routing`'s proof.
    #[test]
    fn pod_quiesces_without_deadlock() {
        let r = run_e14(true);
        assert_eq!(r.hosts, 32, "quick pod: 8 spines x 1 leaf x 4 hosts");
        assert!(
            r.quiesced_clean(),
            "completed {}/{}, deadlocks {}, violations {}, findings {}",
            r.completed,
            r.expected,
            r.deadlock_events,
            r.credit_violations,
            r.audit_findings
        );
        assert!(r.makespan_us > 0.0);
    }
}
