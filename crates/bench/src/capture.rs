//! Shared telemetry capture for the experiment harness.
//!
//! A [`Capture`] bundles the two observability streams an experiment can
//! feed: the causal trace ([`TraceSink`]) and the labeled metrics
//! registry ([`MetricsRegistry`]). Experiments take `&mut Capture` and
//! work identically whether it is disabled (the default, near-zero cost)
//! or recording (the `--trace` / `--metrics` flags of the `experiments`
//! binary).

use fcc_fabric::topology::Topology;
use fcc_sim::Engine;
use fcc_telemetry::{record_deadlock, MetricsRegistry, TraceSink};

/// The harness's telemetry state: one trace sink and one metrics
/// registry shared across every scenario of a run.
pub struct Capture {
    /// The causal trace stream.
    pub sink: TraceSink,
    /// The labeled metrics registry.
    pub metrics: MetricsRegistry,
}

impl Capture {
    /// A disabled capture: every emit is a cheap no-op.
    pub fn disabled() -> Self {
        Capture {
            sink: TraceSink::disabled(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A recording capture.
    pub fn recording() -> Self {
        Capture {
            sink: TraceSink::recording(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Whether tracing is live.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    /// Opens a scenario: a new trace process group named `label`, with
    /// every component track of `topo` wired into the sink.
    pub fn begin_scenario(&self, label: &str, engine: &mut Engine, topo: &Topology) {
        if !self.is_enabled() {
            return;
        }
        self.sink.begin_process(label);
        topo.enable_tracing(engine, &self.sink);
    }

    /// Closes a scenario: harvests `topo`'s counters under
    /// `"<label>."`-prefixed metric names and — if the drained engine
    /// reports stranded work — lands the deadlock report in both the
    /// trace and the metrics streams (§3 D#3's failure mode must be
    /// visible in the export, not just on stderr).
    pub fn end_scenario(&mut self, label: &str, engine: &Engine, topo: &Topology) {
        if !self.is_enabled() {
            return;
        }
        topo.collect_metrics(engine, &mut self.metrics, &format!("{label}."));
        if let Some(report) = engine.deadlock_report() {
            record_deadlock(&self.sink, &mut self.metrics, &report, engine.now());
        }
    }
}

impl Default for Capture {
    fn default() -> Self {
        Capture::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_capture_is_inert() {
        let cap = Capture::disabled();
        assert!(!cap.is_enabled());
        assert!(cap.metrics.is_empty());
    }
}
