//! Wall-clock regression gate over the committed experiment baseline.
//!
//! Usage:
//!
//! ```text
//! bench_gate update [--baseline <file>] [--runs <n>] [--jobs <n>]
//! bench_gate check  [--baseline <file>] [--runs <n>] [--jobs <n>]
//!                   [--tolerance <pct>] [--report <file>]
//! ```
//!
//! `update` reruns every scenario, takes the per-scenario **median** of
//! `--runs` (default 3) wall-clock samples, and rewrites the baseline
//! file (default `BENCH_experiments.json`) with the deterministic scalar
//! results plus a `"_perf"` section. `check` takes fresh medians and
//! compares them against the committed `"_perf"`:
//!
//! * **events** must match the baseline exactly — event counts are
//!   deterministic, so any drift is a simulation change, not noise;
//! * **wall_ms** may not regress by more than `--tolerance` percent
//!   (default 25); scenarios whose baseline wall-clock is under 5 ms are
//!   exempt from the timing check (too small to measure reliably) but
//!   still event-checked.
//!
//! `--report` writes a per-scenario comparison JSON (the CI artifact).
//! Exit code: 0 = green, 1 = regression or event drift, 2 = usage /
//! baseline errors.

use std::process::ExitCode;

use fcc_bench::harness::{baseline_json, run_ids, PerfSample, Scalars, ALL};
use fcc_telemetry::json;

/// Tolerated wall-clock regression, percent.
const DEFAULT_TOLERANCE: f64 = 25.0;
/// Baselines below this wall-clock are exempt from the timing check.
const MIN_GATED_WALL_MS: f64 = 5.0;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate update [--baseline <file>] [--runs <n>] [--jobs <n>]\n       \
         bench_gate check  [--baseline <file>] [--runs <n>] [--jobs <n>] \
         [--tolerance <pct>] [--report <file>]"
    );
    ExitCode::from(2)
}

/// Per-scenario deterministic scalars and median perf samples.
type Measured = (Vec<(String, Scalars)>, Vec<(String, PerfSample)>);

/// Runs every scenario `runs` times and folds each scenario to its
/// median-wall-clock sample. Scalars come from the first run (they are
/// deterministic; later runs only re-measure time).
fn measure(runs: usize, jobs: usize) -> Measured {
    let ids: Vec<String> = ALL.iter().map(|&(id, _, _, _)| id.to_string()).collect();
    let mut results: Vec<(String, Scalars)> = Vec::new();
    let mut samples: Vec<Vec<PerfSample>> = vec![Vec::new(); ids.len()];
    for run in 0..runs {
        eprintln!("bench_gate: measuring run {}/{runs}", run + 1);
        let outputs = run_ids(&ids, false, 0, jobs, false);
        for (i, o) in outputs.into_iter().enumerate() {
            if run == 0 {
                results.push((o.id, o.scalars));
            }
            samples[i].push(o.perf);
        }
    }
    let perf = ids
        .into_iter()
        .zip(samples)
        .map(|(id, mut s)| {
            s.sort_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms));
            (id, s[s.len() / 2])
        })
        .collect();
    (results, perf)
}

/// One scenario's baseline-vs-measured comparison.
struct Row {
    id: String,
    base: PerfSample,
    fresh: PerfSample,
    wall_gated: bool,
    ok: bool,
}

fn check(
    baseline_path: &str,
    tolerance: f64,
    report_path: Option<&str>,
    runs: usize,
    jobs: usize,
) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: baseline {baseline_path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(perf_obj) = doc.get("_perf").and_then(|p| p.as_obj()) else {
        eprintln!(
            "error: baseline {baseline_path} has no \"_perf\" section; \
             run `bench_gate update` and commit the result"
        );
        return ExitCode::from(2);
    };
    let (_, fresh) = measure(runs, jobs);
    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;
    for (id, perf) in fresh {
        let Some(entry) = perf_obj.iter().find(|(k, _)| *k == id).map(|(_, v)| v) else {
            eprintln!("FAIL {id}: not in baseline _perf (run `bench_gate update`)");
            failed = true;
            continue;
        };
        let base = PerfSample {
            wall_ms: entry.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0),
            events: entry.get("events").and_then(|v| v.as_u64()).unwrap_or(0),
        };
        let wall_gated = base.wall_ms >= MIN_GATED_WALL_MS;
        let wall_ok = !wall_gated || perf.wall_ms <= base.wall_ms * (1.0 + tolerance / 100.0);
        let events_ok = perf.events == base.events;
        let ok = wall_ok && events_ok;
        if !events_ok {
            eprintln!(
                "FAIL {id}: event count drifted {} -> {} (simulation change, not noise)",
                base.events, perf.events
            );
        } else if !wall_ok {
            eprintln!(
                "FAIL {id}: wall {:.1} ms -> {:.1} ms (+{:.0}%, tolerance {tolerance:.0}%)",
                base.wall_ms,
                perf.wall_ms,
                (perf.wall_ms / base.wall_ms - 1.0) * 100.0
            );
        } else {
            eprintln!(
                "ok   {id}: wall {:.1} ms -> {:.1} ms, {} events{}",
                base.wall_ms,
                perf.wall_ms,
                perf.events,
                if wall_gated { "" } else { " (timing exempt)" }
            );
        }
        failed |= !ok;
        rows.push(Row {
            id,
            base,
            fresh: perf,
            wall_gated,
            ok,
        });
    }
    if let Some(path) = report_path {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"tolerance_pct\": {tolerance}, \"runs\": {runs}, \"pass\": {},\n  \"scenarios\": {{\n",
            !failed
        ));
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"baseline_wall_ms\": {:.3}, \"wall_ms\": {:.3}, \
                 \"baseline_events\": {}, \"events\": {}, \"events_per_sec\": {:.1}, \
                 \"timing_gated\": {}, \"pass\": {}}}",
                r.id,
                r.base.wall_ms,
                r.fresh.wall_ms,
                r.base.events,
                r.fresh.events,
                r.fresh.events_per_sec(),
                r.wall_gated,
                r.ok
            ));
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("error: cannot write report {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote comparison report to {path}");
    }
    if failed {
        eprintln!("bench_gate: FAIL");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_gate: pass");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<String> = None;
    let mut baseline = "BENCH_experiments.json".to_string();
    let mut report: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut runs = 3usize;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "update" | "check" if mode.is_none() => mode = Some(a),
            "--baseline" | "--report" | "--tolerance" | "--runs" | "--jobs" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {a} requires a value");
                    return usage();
                };
                match a.as_str() {
                    "--baseline" => baseline = v,
                    "--report" => report = Some(v),
                    other => {
                        let Ok(n) = v.parse::<f64>() else {
                            eprintln!("error: {a} {v:?}: not a number");
                            return usage();
                        };
                        match other {
                            "--tolerance" => tolerance = n,
                            "--runs" => runs = (n as usize).max(1),
                            _ => jobs = (n as usize).max(1),
                        }
                    }
                }
            }
            _ => {
                eprintln!("error: unexpected argument {a}");
                return usage();
            }
        }
    }
    match mode.as_deref() {
        Some("update") => {
            let (results, perf) = measure(runs, jobs);
            match std::fs::write(&baseline, baseline_json(&results, &perf)) {
                Ok(()) => {
                    eprintln!("bench_gate: wrote baseline to {baseline}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: cannot write {baseline}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("check") => check(&baseline, tolerance, report.as_deref(), runs, jobs),
        _ => usage(),
    }
}
