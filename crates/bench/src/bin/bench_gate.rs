//! Wall-clock regression gate over the committed experiment baseline.
//!
//! Usage:
//!
//! ```text
//! bench_gate update [--baseline <file>] [--history <file>] [--runs <n>]
//!                   [--jobs <n>]
//! bench_gate check  [--baseline <file>] [--runs <n>] [--jobs <n>]
//!                   [--tolerance <pct>] [--report <file>]
//! bench_gate shards [--id <id>] [--shards <n>] [--runs <n>]
//!                   [--min-speedup <x>] [--report <file>]
//! ```
//!
//! `update` reruns every scenario, takes the per-scenario **median** of
//! `--runs` (default 3) wall-clock samples, and rewrites the baseline
//! file (default `BENCH_experiments.json`) with the deterministic scalar
//! results plus a `"_perf"` section. It also appends a timestamped entry
//! to the trajectory file (default `BENCH_history.json`), so the
//! wall-clock history of the suite survives baseline rewrites. `check`
//! takes fresh medians and compares them against the committed `"_perf"`:
//!
//! * **events** must match the baseline exactly — event counts are
//!   deterministic, so any drift is a simulation change, not noise;
//! * **wall_ms** may not regress by more than `--tolerance` percent
//!   (default 25); scenarios whose baseline wall-clock is under 5 ms are
//!   exempt from the timing check (too small to measure reliably) but
//!   still event-checked.
//!
//! `shards` gates the sharded executor itself: it runs one scenario
//! (default `e3x`) serially and with `--shards <n>` (default 4) worker
//! threads, requires **exactly equal event counts** and **byte-identical
//! exports** (results, trace, metrics) between the two, and — when the
//! host has at least `<n>` CPUs — requires the sharded median wall clock
//! to beat serial by `--min-speedup` (default 1.5x). On smaller hosts the
//! timing half is reported but exempt, mirroring the 5 ms rule above:
//! parallel speedup is unmeasurable without parallel hardware, while the
//! determinism contract is checkable anywhere.
//!
//! `--report` writes a per-scenario comparison JSON (the CI artifact).
//! Exit code: 0 = green, 1 = regression or event drift, 2 = usage /
//! baseline errors.

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use fcc_bench::capture::Capture;
use fcc_bench::harness::{baseline_json, results_json, run_ids, PerfSample, Scalars, ALL};
use fcc_telemetry::json;

/// Tolerated wall-clock regression, percent.
const DEFAULT_TOLERANCE: f64 = 25.0;
/// Baselines below this wall-clock are exempt from the timing check.
const MIN_GATED_WALL_MS: f64 = 5.0;
/// Default required serial/sharded speedup for `bench_gate shards`.
const DEFAULT_MIN_SPEEDUP: f64 = 1.5;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate update [--baseline <file>] [--history <file>] [--runs <n>] [--jobs <n>]\n       \
         bench_gate check  [--baseline <file>] [--runs <n>] [--jobs <n>] \
         [--tolerance <pct>] [--report <file>]\n       \
         bench_gate shards [--id <id>] [--shards <n>] [--runs <n>] \
         [--min-speedup <x>] [--report <file>]"
    );
    ExitCode::from(2)
}

/// Per-scenario deterministic scalars and median perf samples.
type Measured = (Vec<(String, Scalars)>, Vec<(String, PerfSample)>);

/// Median-wall-clock fold over one scenario's samples.
fn median(mut s: Vec<PerfSample>) -> PerfSample {
    s.sort_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms));
    s[s.len() / 2]
}

/// Runs every scenario `runs` times and folds each scenario to its
/// median-wall-clock sample. Scalars come from the first run (they are
/// deterministic; later runs only re-measure time).
fn measure(runs: usize, jobs: usize) -> Measured {
    let ids: Vec<String> = ALL.iter().map(|&(id, _, _, _)| id.to_string()).collect();
    let mut results: Vec<(String, Scalars)> = Vec::new();
    let mut samples: Vec<Vec<PerfSample>> = vec![Vec::new(); ids.len()];
    for run in 0..runs {
        eprintln!("bench_gate: measuring run {}/{runs}", run + 1);
        let outputs = run_ids(&ids, false, 0, jobs, false, 1);
        for (i, o) in outputs.into_iter().enumerate() {
            if run == 0 {
                results.push((o.id, o.scalars));
            }
            samples[i].push(o.perf);
        }
    }
    let perf = ids
        .into_iter()
        .zip(samples)
        .map(|(id, s)| (id, median(s)))
        .collect();
    (results, perf)
}

/// Appends one timestamped `{unix_time, runs, scenarios}` entry to the
/// JSON-array trajectory file, creating it if absent. The file stays a
/// valid JSON array after every append (verified by re-parsing).
fn append_history(path: &str, runs: usize, perf: &[(String, PerfSample)]) -> Result<(), String> {
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entry = format!("  {{\"unix_time\": {unix_time}, \"runs\": {runs}, \"scenarios\": {{");
    for (i, (id, p)) in perf.iter().enumerate() {
        entry.push_str(&format!(
            "\"{id}\": {{\"wall_ms\": {:.3}, \"events\": {}}}{}",
            p.wall_ms,
            p.events,
            if i + 1 < perf.len() { ", " } else { "" }
        ));
    }
    entry.push_str("}}");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
    let doc = if trimmed.is_empty() || trimmed == "[" {
        format!("[\n{entry}\n]\n")
    } else {
        format!("{trimmed},\n{entry}\n]\n")
    };
    json::parse(&doc).map_err(|e| format!("history would be invalid JSON: {e}"))?;
    std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))
}

/// One scenario's baseline-vs-measured comparison.
struct Row {
    id: String,
    base: PerfSample,
    fresh: PerfSample,
    wall_gated: bool,
    ok: bool,
}

fn check(
    baseline_path: &str,
    tolerance: f64,
    report_path: Option<&str>,
    runs: usize,
    jobs: usize,
) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: baseline {baseline_path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(perf_obj) = doc.get("_perf").and_then(|p| p.as_obj()) else {
        eprintln!(
            "error: baseline {baseline_path} has no \"_perf\" section; \
             run `bench_gate update` and commit the result"
        );
        return ExitCode::from(2);
    };
    let (_, fresh) = measure(runs, jobs);
    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;
    for (id, perf) in fresh {
        let Some(entry) = perf_obj.iter().find(|(k, _)| *k == id).map(|(_, v)| v) else {
            eprintln!("FAIL {id}: not in baseline _perf (run `bench_gate update`)");
            failed = true;
            continue;
        };
        let base = PerfSample {
            wall_ms: entry.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0),
            events: entry.get("events").and_then(|v| v.as_u64()).unwrap_or(0),
        };
        let wall_gated = base.wall_ms >= MIN_GATED_WALL_MS;
        let wall_ok = !wall_gated || perf.wall_ms <= base.wall_ms * (1.0 + tolerance / 100.0);
        let events_ok = perf.events == base.events;
        let ok = wall_ok && events_ok;
        if !events_ok {
            eprintln!(
                "FAIL {id}: event count drifted {} -> {} (simulation change, not noise)",
                base.events, perf.events
            );
        } else if !wall_ok {
            eprintln!(
                "FAIL {id}: wall {:.1} ms -> {:.1} ms (+{:.0}%, tolerance {tolerance:.0}%)",
                base.wall_ms,
                perf.wall_ms,
                (perf.wall_ms / base.wall_ms - 1.0) * 100.0
            );
        } else {
            eprintln!(
                "ok   {id}: wall {:.1} ms -> {:.1} ms, {} events{}",
                base.wall_ms,
                perf.wall_ms,
                perf.events,
                if wall_gated { "" } else { " (timing exempt)" }
            );
        }
        failed |= !ok;
        rows.push(Row {
            id,
            base,
            fresh: perf,
            wall_gated,
            ok,
        });
    }
    if let Some(path) = report_path {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"tolerance_pct\": {tolerance}, \"runs\": {runs}, \"pass\": {},\n  \"scenarios\": {{\n",
            !failed
        ));
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"baseline_wall_ms\": {:.3}, \"wall_ms\": {:.3}, \
                 \"baseline_events\": {}, \"events\": {}, \"events_per_sec\": {:.1}, \
                 \"timing_gated\": {}, \"pass\": {}}}",
                r.id,
                r.base.wall_ms,
                r.fresh.wall_ms,
                r.base.events,
                r.fresh.events,
                r.fresh.events_per_sec(),
                r.wall_gated,
                r.ok
            ));
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("error: cannot write report {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote comparison report to {path}");
    }
    if failed {
        eprintln!("bench_gate: FAIL");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_gate: pass");
        ExitCode::SUCCESS
    }
}

/// The three assembled exports of one recorded run, for byte-comparison.
fn assembled_exports(id: &str, shards: usize) -> (String, String, String) {
    let outputs = run_ids(&[id.to_string()], false, 0, 1, true, shards);
    let results: Vec<(String, Scalars)> = outputs
        .iter()
        .map(|o| (o.id.clone(), o.scalars.clone()))
        .collect();
    let mut cap = Capture::recording();
    for o in outputs {
        cap.metrics.merge(&o.metrics);
        if let Some(dump) = o.trace {
            cap.sink.absorb(dump);
        }
    }
    (
        results_json(&results),
        cap.sink.to_chrome_json(),
        cap.metrics.to_json(),
    )
}

/// Gates the sharded executor: determinism everywhere, speedup where the
/// host can express it.
fn shards_gate(
    id: &str,
    shards: usize,
    runs: usize,
    min_speedup: f64,
    report_path: Option<&str>,
) -> ExitCode {
    if ALL.iter().all(|&(known, _, _, _)| known != id) {
        eprintln!("error: unknown experiment id: {id}");
        return ExitCode::from(2);
    }
    let mut medians = Vec::new();
    for &workers in &[1, shards] {
        let mut samples = Vec::new();
        for run in 0..runs {
            eprintln!(
                "bench_gate: {id} --shards {workers}, run {}/{runs}",
                run + 1
            );
            let outputs = run_ids(&[id.to_string()], false, 0, 1, false, workers);
            samples.push(outputs[0].perf);
        }
        medians.push(median(samples));
    }
    let (serial, sharded) = (medians[0], medians[1]);
    let mut failed = false;
    if serial.events != sharded.events {
        eprintln!(
            "FAIL {id}: event count diverged across worker counts: {} (serial) vs {} \
             (--shards {shards}) — the executor broke determinism",
            serial.events, sharded.events
        );
        failed = true;
    }
    eprintln!("bench_gate: comparing recorded exports (serial vs --shards {shards})");
    let base = assembled_exports(id, 1);
    let exports_ok = assembled_exports(id, shards) == base;
    if !exports_ok {
        eprintln!("FAIL {id}: exports are not byte-identical across worker counts");
        failed = true;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial.wall_ms / sharded.wall_ms.max(1e-9);
    let timing_gated = cores >= shards;
    if timing_gated && speedup < min_speedup {
        eprintln!(
            "FAIL {id}: --shards {shards} speedup {speedup:.2}x < required {min_speedup:.2}x \
             (serial {:.1} ms, sharded {:.1} ms)",
            serial.wall_ms, sharded.wall_ms
        );
        failed = true;
    } else {
        eprintln!(
            "ok   {id}: serial {:.1} ms, --shards {shards} {:.1} ms, speedup {speedup:.2}x{}",
            serial.wall_ms,
            sharded.wall_ms,
            if timing_gated {
                String::new()
            } else {
                format!(" (timing exempt: {cores} CPUs < {shards} shards)")
            }
        );
    }
    if let Some(path) = report_path {
        let out = format!(
            "{{\n  \"id\": \"{id}\", \"shards\": {shards}, \"runs\": {runs}, \
             \"min_speedup\": {min_speedup}, \"cpus\": {cores},\n  \
             \"serial_wall_ms\": {:.3}, \"sharded_wall_ms\": {:.3}, \"speedup\": {speedup:.3},\n  \
             \"serial_events\": {}, \"sharded_events\": {}, \"exports_identical\": {exports_ok},\n  \
             \"timing_gated\": {timing_gated}, \"pass\": {}\n}}\n",
            serial.wall_ms,
            sharded.wall_ms,
            serial.events,
            sharded.events,
            !failed
        );
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("error: cannot write report {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote shards report to {path}");
    }
    if failed {
        eprintln!("bench_gate: FAIL");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_gate: pass");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<String> = None;
    let mut baseline = "BENCH_experiments.json".to_string();
    let mut history = "BENCH_history.json".to_string();
    let mut report: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut runs = 3usize;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut shards = 4usize;
    let mut min_speedup = DEFAULT_MIN_SPEEDUP;
    let mut id = "e3x".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "update" | "check" | "shards" if mode.is_none() => mode = Some(a),
            "--baseline" | "--history" | "--report" | "--tolerance" | "--runs" | "--jobs"
            | "--shards" | "--min-speedup" | "--id" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {a} requires a value");
                    return usage();
                };
                match a.as_str() {
                    "--baseline" => baseline = v,
                    "--history" => history = v,
                    "--report" => report = Some(v),
                    "--id" => id = v,
                    other => {
                        let Ok(n) = v.parse::<f64>() else {
                            eprintln!("error: {a} {v:?}: not a number");
                            return usage();
                        };
                        match other {
                            "--tolerance" => tolerance = n,
                            "--runs" => runs = (n as usize).max(1),
                            "--shards" => shards = (n as usize).max(1),
                            "--min-speedup" => min_speedup = n,
                            _ => jobs = (n as usize).max(1),
                        }
                    }
                }
            }
            _ => {
                eprintln!("error: unexpected argument {a}");
                return usage();
            }
        }
    }
    match mode.as_deref() {
        Some("update") => {
            let (results, perf) = measure(runs, jobs);
            match std::fs::write(&baseline, baseline_json(&results, &perf)) {
                Ok(()) => {
                    eprintln!("bench_gate: wrote baseline to {baseline}");
                    match append_history(&history, runs, &perf) {
                        Ok(()) => {
                            eprintln!("bench_gate: appended trajectory entry to {history}");
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::from(2)
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: cannot write {baseline}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("check") => check(&baseline, tolerance, report.as_deref(), runs, jobs),
        Some("shards") => shards_gate(&id, shards, runs, min_speedup, report.as_deref()),
        _ => usage(),
    }
}
