//! Diagnostic: event counts and wall time for contended fabric runs.

use std::time::Instant;

use fcc_bench::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};
use fcc_fabric::credit::AllocPolicy;
use fcc_fabric::endpoint::{Endpoint, PipelinedMemory};
use fcc_fabric::switch::{FabricSwitch, QueueDiscipline, SwitchConfig};
use fcc_fabric::topology::{self, TopologySpec, FAM_BASE};
use fcc_proto::phys::PhysConfig;
use fcc_sim::{Engine, SimTime};

fn main() {
    let dev: Box<dyn Endpoint> = Box::new(PipelinedMemory::new(
        SimTime::from_ns(200.0),
        SimTime::from_ns(220.0),
        SimTime::from_ns(40.0),
        1 << 30,
    ));
    let spec = TopologySpec {
        switch: SwitchConfig {
            phys: PhysConfig::omega_like(),
            fwd_latency: SimTime::from_ns(90.0),
            queueing: QueueDiscipline::Voq,
            allocation: AllocPolicy::Fair,
            ..SwitchConfig::fabrex_like()
        },
        fha_outstanding: 64,
        ..TopologySpec::default()
    };
    let mut engine = Engine::new(1);
    let topo = topology::single_switch(&mut engine, spec, 3, vec![dev]);
    let small = engine.add_component(
        "small",
        LoadGen::new(LoadCfg {
            fha: topo.hosts[0].fha,
            base: FAM_BASE,
            len: 1 << 20,
            op_bytes: 64,
            write: true,
            window: 2,
            count: Some(100),
            stop_at: SimTime::MAX,
            pattern: AddrPattern::Sequential,
        }),
    );
    engine.post(small, SimTime::ZERO, StartLoad);
    for h in 1..3 {
        let lg = engine.add_component(
            format!("bulk{h}"),
            LoadGen::new(LoadCfg {
                fha: topo.hosts[h].fha,
                base: FAM_BASE + (h as u64) * (64 << 20),
                len: 32 << 20,
                op_bytes: 16384,
                write: true,
                window: 2,
                count: None,
                stop_at: SimTime::from_us(100.0),
                pattern: AddrPattern::Sequential,
            }),
        );
        engine.post(lg, SimTime::ZERO, StartLoad);
    }
    let t = Instant::now();
    engine.run_until_idle();
    println!(
        "{} events, {:?} wall, sim {}",
        engine.events_dispatched(),
        t.elapsed(),
        engine.now()
    );
    let sw = engine.component::<FabricSwitch>(topo.switches[0]);
    println!("switch forwarded {}", sw.forwarded.get());
    for p in 0..sw.port_count() {
        println!(
            "  port {p}: tx {} rx {} pending {}",
            sw.port(p).tx_flits.get(),
            sw.port(p).rx_flits.get(),
            sw.port(p).pending_len(),
        );
    }
}
