//! Regenerates the paper's tables, figures, and quantified claims.
//!
//! Usage:
//!
//! ```text
//! experiments list
//! experiments [--quick] [--json <file>] [--trace <file>] [--metrics <file>] <id>... | all
//! ```
//!
//! * `list` prints the experiment-id table and exits.
//! * `--quick` shortens op counts (CI-friendly; same shapes).
//! * `--seed <n>` salts every scenario's RNG (default 0, the published
//!   numbers); different seeds re-draw workloads without changing shapes.
//! * `--json <file>` writes every run experiment's scalar results as one
//!   JSON object keyed by experiment id.
//! * `--trace <file>` writes a Chrome-trace-event/Perfetto JSON causal
//!   trace of the instrumented experiments (T2 and E3a–E3e); load it in
//!   `ui.perfetto.dev` or feed it to the `trace-report` binary.
//! * `--metrics <file>` writes the hierarchical metrics registry
//!   harvested from the same runs as JSON.

use std::process::ExitCode;

use fcc_bench::capture::Capture;
use fcc_bench::{
    exp_abl, exp_e10, exp_e11, exp_e3, exp_e4, exp_e5, exp_e6, exp_e7, exp_e8, exp_e9, exp_f1,
    exp_nodes, exp_t1, exp_t2, fmt_table,
};

/// Experiment registry: `(id, traced, description)`.
const ALL: [(&str, bool, &str); 20] = [
    ("t1", false, "Table 1: commodity memory fabrics registry"),
    (
        "t2",
        true,
        "Table 2: memory-hierarchy 64 B latency/throughput",
    ),
    (
        "f1",
        false,
        "fabric discovery, PBR routing, cross-fabric reads",
    ),
    (
        "e3a",
        true,
        "concurrent 64 B writes to a disaggregated device",
    ),
    (
        "e3b",
        true,
        "64 B writes interleaved with 16 KiB bulk traffic",
    ),
    (
        "e3c",
        true,
        "credit allocation: ramp-up starves bursty flows",
    ),
    ("e3d", true, "credit-agnostic FIFO scheduling: HOL blocking"),
    (
        "e3e",
        true,
        "credit starvation back-propagates across switches",
    ),
    ("e4", false, "eTrans managed transfers vs synchronous loads"),
    ("e5", false, "unified heap placement and migration policies"),
    (
        "e6",
        false,
        "idempotent tasks vs checkpointing under failures",
    ),
    ("e7", false, "fabric arbiter reservations and fairness"),
    ("e8", false, "baseband pipeline deployment modes"),
    ("e9", false, "MLP window and working-set sweeps"),
    ("e10", false, "FAA kernel launch and context switching"),
    (
        "e11",
        true,
        "online composition: hot-add, managed drain, naive yank",
    ),
    ("nodes", false, "memory-node types: expander vs CC-NUMA"),
    ("abl-flit", false, "ablation: 68 B vs 256 B flit framing"),
    (
        "abl-adaptive",
        false,
        "ablation: adaptive vs deterministic routing",
    ),
    ("abl-credits", false, "ablation: link credit-depth sweep"),
];

/// Scalar results of one experiment: `(key, value)` pairs.
type Scalars = Vec<(String, f64)>;

fn kv(key: &str, v: f64) -> (String, f64) {
    (key.to_string(), v)
}

/// Lowercases and underscores a free-form label into a JSON key segment.
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn run_one(id: &str, quick: bool, cap: &mut Capture, seed: u64) -> Option<Scalars> {
    println!("================================================================");
    let mut s: Scalars = Vec::new();
    match id {
        "t1" => {
            let r = exp_t1::run();
            println!("{r}");
            s.push(kv("fabrics", r.rows.len() as f64));
        }
        "t2" => {
            let r = exp_t2::run_captured_seeded(quick, cap, seed);
            println!("{r}");
            for t in &r.tiers {
                let tier = slug(t.name);
                s.push(kv(&format!("{tier}_read_ns"), t.read_ns));
                s.push(kv(&format!("{tier}_write_ns"), t.write_ns));
                s.push(kv(&format!("{tier}_read_mops"), t.read_mops));
                s.push(kv(&format!("{tier}_write_mops"), t.write_mops));
            }
            s.push(kv("remote_local_ratio", r.remote_local_ratio()));
        }
        "f1" => {
            let r = exp_f1::run_seeded(seed);
            println!("{r}");
            s.push(kv("hosts", r.hosts as f64));
            s.push(kv("devices", r.devices as f64));
            s.push(kv("switches", r.switches as f64));
            s.push(kv("routes", r.routes as f64));
            s.push(kv("verified", r.verified as f64));
            s.push(kv("attempted", r.attempted as f64));
            s.push(kv("mean_read_ns", r.mean_read_ns));
        }
        "e3a" => {
            let r = exp_e3::run_a_captured_seeded(quick, cap, seed);
            println!("{r}");
            s.push(kv("inhost_ns", r.inhost_ns));
            for &(w, ns) in &r.disaggregated {
                s.push(kv(&format!("w{w}_ns"), ns));
            }
            s.push(kv("delta_w8_ns", r.delta_at(8)));
        }
        "e3b" => {
            let r = exp_e3::run_b_captured_seeded(quick, cap, seed);
            println!("{r}");
            s.push(kv("alone_mean_ns", r.alone.mean));
            s.push(kv("alone_p99_ns", r.alone.p99));
            s.push(kv("interfered_mean_ns", r.interfered.mean));
            s.push(kv("interfered_p99_ns", r.interfered.p99));
            s.push(kv("mean_inflation", r.mean_inflation()));
            s.push(kv("p99_inflation", r.p99_inflation()));
        }
        "e3c" => {
            let r = exp_e3::run_c_captured_seeded(quick, cap, seed);
            println!("{r}");
            for o in &r.outcomes {
                let p = slug(o.policy);
                s.push(kv(&format!("{p}_hog_ops_us"), o.hog_tput));
                s.push(kv(&format!("{p}_bursty_ops_us"), o.bursty_tput));
                s.push(kv(&format!("{p}_bursty_p99_ns"), o.bursty_p99));
            }
        }
        "e3d" => {
            let r = exp_e3::run_d_captured_seeded(quick, cap, seed);
            println!("{r}");
            s.push(kv("fifo_fast_ops_us", r.fifo_fast_tput));
            s.push(kv("voq_fast_ops_us", r.voq_fast_tput));
            s.push(kv("fifo_slow_ops_us", r.fifo_slow_tput));
            s.push(kv("hol_factor", r.hol_factor()));
        }
        "e3e" => {
            let r = exp_e3::run_e_captured_seeded(quick, cap, seed);
            println!("{r}");
            s.push(kv("victim_alone_ops_us", r.victim_alone));
            s.push(kv("victim_congested_ops_us", r.victim_congested));
            s.push(kv("hog_ops_us", r.hog_tput));
            s.push(kv("degradation", r.degradation()));
        }
        "e4" => {
            let r = exp_e4::run_seeded(quick, seed);
            println!("{r}");
            s.push(kv("chunks", r.chunks as f64));
            s.push(kv("sync_us", r.sync_us));
            s.push(kv("managed_us", r.managed_us));
            s.push(kv("sync_stall_us", r.sync_stall_us));
            s.push(kv("managed_stall_us", r.managed_stall_us));
            s.push(kv("speedup", r.speedup()));
        }
        "e5" => {
            let r = exp_e5::run_seeded(quick, seed);
            println!("{r}");
            for o in &r.outcomes {
                let p = slug(o.policy);
                s.push(kv(&format!("{p}_mean_ns"), o.mean_ns));
                s.push(kv(&format!("{p}_migrations"), o.migrations as f64));
                s.push(kv(&format!("{p}_bytes_migrated"), o.bytes_migrated as f64));
            }
            s.push(kv("speedup_vs_remote", r.speedup_vs_remote()));
        }
        "e6" => {
            let r = exp_e6::run_seeded(quick, seed);
            println!("{r}");
            s.push(kv("baseline_us", r.baseline_us));
            for p in &r.points {
                let m = p.mtbf_us.round() as u64;
                s.push(kv(
                    &format!("mtbf{m}us_idem_makespan_us"),
                    p.idempotent.makespan.as_us(),
                ));
                s.push(kv(
                    &format!("mtbf{m}us_ckpt_makespan_us"),
                    p.checkpoint.makespan.as_us(),
                ));
            }
            s.push(kv(
                "naive_clobber_corrupts",
                r.naive_clobber_corrupts as u64 as f64,
            ));
            s.push(kv("versioned_is_safe", r.versioned_is_safe as u64 as f64));
        }
        "e7" => {
            let r = exp_e7::run_seeded(quick, seed);
            println!("{r}");
            s.push(kv("control_rtt_ns", r.control_rtt_ns));
            s.push(kv("uncoordinated_hog_ops_us", r.uncoordinated.0));
            s.push(kv("uncoordinated_bursty_ops_us", r.uncoordinated.1));
            s.push(kv("arbitrated_hog_ops_us", r.arbitrated.0));
            s.push(kv("arbitrated_bursty_ops_us", r.arbitrated.1));
            s.push(kv("jain_before", r.jain_before));
            s.push(kv("jain_after", r.jain_after));
        }
        "e8" => {
            let r = exp_e8::run_seeded(quick, seed);
            println!("{r}");
            s.push(kv("ber_15db", r.ber_15db));
            s.push(kv("ber_35db", r.ber_35db));
            for m in &r.modes {
                s.push(kv(&format!("{}_frame_us", slug(m.mode)), m.frame_us));
            }
            s.push(kv("unifabric_with_failure_us", r.unifabric_with_failure_us));
        }
        "e9" => {
            let r = exp_e9::run_seeded(quick, seed);
            println!("{r}");
            for &(w, mops) in &r.window_sweep {
                s.push(kv(&format!("window{w}_mops"), mops));
            }
            for &(ws, ns) in &r.ws_sweep {
                s.push(kv(&format!("ws{ws}kib_ns"), ns));
            }
        }
        "e10" => {
            let r = exp_e10::run_seeded(quick, seed);
            println!("{r}");
            s.push(kv("fabric_launch_ns", r.fabric_launch_ns));
            s.push(kv("rdma_launch_ns", r.rdma_launch_ns));
            s.push(kv("launch_advantage", r.launch_advantage()));
            s.push(kv("fast_switch_us", r.fast_switch_us));
            s.push(kv("slow_switch_us", r.slow_switch_us));
            s.push(kv("switches", r.switches as f64));
        }
        "e11" => {
            let r = exp_e11::run_captured_seeded(quick, cap, seed);
            println!("{r}");
            s.push(kv("steady_p99_ns", r.steady.p99_ns));
            s.push(kv("managed_p99_ns", r.managed.p99_ns));
            s.push(kv("managed_p99_inflation", r.managed_p99_inflation()));
            s.push(kv("managed_lost_objects", r.managed.lost_objects as f64));
            s.push(kv("managed_deadlocked", r.managed.deadlocked as u64 as f64));
            s.push(kv("managed_epochs", r.managed.epochs as f64));
            s.push(kv("evac_jobs", r.managed.evac_jobs as f64));
            s.push(kv("evac_bytes", r.managed.evac_bytes as f64));
            s.push(kv("yank_lost_objects", r.yank.lost_objects as f64));
            s.push(kv("yank_deadlocked", r.yank.deadlocked as u64 as f64));
        }
        "nodes" => {
            let r = exp_nodes::run_seeded(quick, seed);
            println!("{r}");
            s.push(kv("expander_ns", r.expander_ns));
            s.push(kv("ccnuma_private_ns", r.ccnuma_private_ns));
            s.push(kv("ccnuma_pingpong_ns", r.ccnuma_pingpong_ns));
            s.push(kv("snoops", r.snoops as f64));
        }
        "abl-flit" => {
            let r = exp_abl::run_flit_seeded(quick, seed);
            println!("{r}");
            s.push(kv("bulk_flit68_ops_us", r.bulk.0));
            s.push(kv("bulk_flit256_ops_us", r.bulk.1));
            s.push(kv("small_flit68_ns", r.small.0));
            s.push(kv("small_flit256_ns", r.small.1));
        }
        "abl-adaptive" => {
            let r = exp_abl::run_adaptive_seeded(quick, seed);
            println!("{r}");
            s.push(kv("deterministic_ops_us", r.deterministic));
            s.push(kv("adaptive_ops_us", r.adaptive));
        }
        "abl-credits" => {
            let r = exp_abl::run_credits_seeded(quick, seed);
            println!("{r}");
            for &(flits, tput) in &r.points {
                s.push(kv(&format!("credits{flits}_ops_us"), tput));
            }
        }
        _ => return None,
    }
    Some(s)
}

/// Renders the scalar results of every run as one JSON object keyed by
/// experiment id. Non-finite values (shape-dependent NaNs) render as
/// `null` so the output is always valid JSON.
fn results_json(results: &[(String, Scalars)]) -> String {
    let mut out = String::from("{\n");
    for (i, (id, scalars)) in results.iter().enumerate() {
        out.push_str(&format!("  \"{id}\": {{\n"));
        for (j, (k, v)) in scalars.iter().enumerate() {
            let val = if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            };
            out.push_str(&format!("    \"{k}\": {val}"));
            out.push_str(if j + 1 < scalars.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

fn print_list() {
    let rows: Vec<Vec<String>> = ALL
        .iter()
        .map(|&(id, traced, desc)| {
            vec![
                id.to_string(),
                if traced { "yes" } else { "-" }.to_string(),
                desc.to_string(),
            ]
        })
        .collect();
    print!("{}", fmt_table(&["id", "traced", "description"], &rows));
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments list\n       experiments [--quick] [--seed <n>] [--json <file>] \
         [--trace <file>] [--metrics <file>] <id>... | all"
    );
    eprintln!(
        "ids: {} all",
        ALL.iter()
            .map(|&(id, _, _)| id)
            .collect::<Vec<_>>()
            .join(" ")
    );
    ExitCode::from(2)
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), ExitCode> {
    match std::fs::write(path, contents) {
        Ok(()) => {
            eprintln!("wrote {what} to {path}");
            Ok(())
        }
        Err(e) => {
            eprintln!("error: cannot write {what} to {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 0u64;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let Some(n) = it.next() else {
                    eprintln!("error: --seed requires a number");
                    return usage();
                };
                match n.parse::<u64>() {
                    Ok(n) => seed = n,
                    Err(e) => {
                        eprintln!("error: --seed {n:?}: {e}");
                        return usage();
                    }
                }
            }
            "--json" | "--trace" | "--metrics" => {
                let Some(path) = it.next() else {
                    eprintln!("error: {a} requires a file argument");
                    return usage();
                };
                match a.as_str() {
                    "--json" => json_path = Some(path),
                    "--trace" => trace_path = Some(path),
                    _ => metrics_path = Some(path),
                }
            }
            "list" => {
                print_list();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other}");
                return usage();
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|&(id, _, _)| id.to_string()).collect();
    }
    // Reject typos before running anything: a bad id at position N must
    // not cost the N-1 experiments before it.
    for id in &ids {
        if !ALL.iter().any(|&(known, _, _)| known == id) {
            eprintln!("unknown experiment id: {id}");
            return usage();
        }
    }
    let capture_wanted = trace_path.is_some() || metrics_path.is_some();
    let mut cap = if capture_wanted {
        Capture::recording()
    } else {
        Capture::disabled()
    };
    if capture_wanted {
        let untraced: Vec<&str> = ids
            .iter()
            .map(String::as_str)
            .filter(|id| {
                ALL.iter()
                    .any(|&(known, traced, _)| known == *id && !traced)
            })
            .collect();
        if !untraced.is_empty() {
            eprintln!(
                "note: no tracing instrumentation for: {} (runs untraced)",
                untraced.join(" ")
            );
        }
    }
    let mut results: Vec<(String, Scalars)> = Vec::new();
    for id in &ids {
        match run_one(id, quick, &mut cap, seed) {
            Some(scalars) => results.push((id.clone(), scalars)),
            None => {
                // Unreachable: ids were validated against ALL above.
                eprintln!("unknown experiment id: {id}");
                return usage();
            }
        }
    }
    if let Some(path) = &json_path {
        if let Err(code) = write_file(path, &results_json(&results), "results") {
            return code;
        }
    }
    if let Some(path) = &trace_path {
        if let Err(code) = write_file(path, &cap.sink.to_chrome_json(), "trace") {
            return code;
        }
    }
    if let Some(path) = &metrics_path {
        if let Err(code) = write_file(path, &cap.metrics.to_json(), "metrics") {
            return code;
        }
    }
    ExitCode::SUCCESS
}
