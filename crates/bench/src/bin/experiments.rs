//! Regenerates the paper's tables, figures, and quantified claims.
//!
//! Usage:
//!
//! ```text
//! experiments list
//! experiments [--quick] [--jobs <n>] [--shards <n>] [--json <file>] \
//!             [--trace <file>] [--metrics <file>] [--perf <file>] <id>... | all
//! ```
//!
//! * `list` prints the experiment-id table and exits.
//! * `--quick` shortens op counts (CI-friendly; same shapes).
//! * `--seed <n>` salts every scenario's RNG (default 0, the published
//!   numbers); different seeds re-draw workloads without changing shapes.
//! * `--jobs <n>` caps the scenario fan-out (default: one per core).
//!   Every export is byte-identical for any `--jobs` value: scenarios are
//!   fully isolated and outputs are assembled in scenario order.
//! * `--shards <n>` sets the worker-thread fan-out of sharded-executor
//!   scenarios (`e3x`, `e12`, `e13`; default 1). The shard decomposition
//!   is fixed by
//!   the topology, so exports are byte-identical for any `--shards`
//!   value, composed freely with `--jobs`.
//! * `--json <file>` writes every run experiment's scalar results as one
//!   JSON object keyed by experiment id. Timing never appears here — the
//!   simulation results are deterministic and diffable.
//! * `--perf <file>` writes per-scenario wall-clock and events/sec (the
//!   non-deterministic measurements) as JSON; `scripts/bench_gate.sh`
//!   compares this against the committed baseline.
//! * `--trace <file>` writes a Chrome-trace-event/Perfetto JSON causal
//!   trace of the instrumented experiments (T2 and E3a–E3e); load it in
//!   `ui.perfetto.dev` or feed it to the `trace-report` binary.
//! * `--metrics <file>` writes the hierarchical metrics registry
//!   harvested from the same runs as JSON.

use std::process::ExitCode;

use fcc_bench::capture::Capture;
use fcc_bench::fmt_table;
use fcc_bench::harness::{perf_json, results_json, run_ids, Scalars, ALL};

fn print_list() {
    let rows: Vec<Vec<String>> = ALL
        .iter()
        .map(|&(id, traced, _, desc)| {
            vec![
                id.to_string(),
                if traced { "yes" } else { "-" }.to_string(),
                desc.to_string(),
            ]
        })
        .collect();
    print!("{}", fmt_table(&["id", "traced", "description"], &rows));
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments list\n       experiments [--quick] [--seed <n>] [--jobs <n>] \
         [--shards <n>] [--json <file>] [--trace <file>] [--metrics <file>] [--perf <file>] \
         <id>... | all"
    );
    eprintln!(
        "ids: {} all",
        ALL.iter()
            .map(|&(id, _, _, _)| id)
            .collect::<Vec<_>>()
            .join(" ")
    );
    ExitCode::from(2)
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), ExitCode> {
    match std::fs::write(path, contents) {
        Ok(()) => {
            eprintln!("wrote {what} to {path}");
            Ok(())
        }
        Err(e) => {
            eprintln!("error: cannot write {what} to {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 0u64;
    let mut jobs: Option<usize> = None;
    let mut shards = 1usize;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut perf_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" | "--jobs" | "--shards" => {
                let Some(n) = it.next() else {
                    eprintln!("error: {a} requires a number");
                    return usage();
                };
                match (a.as_str(), n.parse::<u64>()) {
                    ("--seed", Ok(v)) => seed = v,
                    ("--shards", Ok(v)) => shards = (v as usize).max(1),
                    (_, Ok(v)) => jobs = Some((v as usize).max(1)),
                    (_, Err(e)) => {
                        eprintln!("error: {a} {n:?}: {e}");
                        return usage();
                    }
                }
            }
            "--json" | "--trace" | "--metrics" | "--perf" => {
                let Some(path) = it.next() else {
                    eprintln!("error: {a} requires a file argument");
                    return usage();
                };
                match a.as_str() {
                    "--json" => json_path = Some(path),
                    "--trace" => trace_path = Some(path),
                    "--perf" => perf_path = Some(path),
                    _ => metrics_path = Some(path),
                }
            }
            "list" => {
                print_list();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other}");
                return usage();
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|&(id, _, _, _)| id.to_string()).collect();
    }
    // Reject typos before running anything: a bad id at position N must
    // not cost the N-1 experiments before it.
    for id in &ids {
        if !ALL.iter().any(|&(known, _, _, _)| known == id) {
            eprintln!("unknown experiment id: {id}");
            return usage();
        }
    }
    let capture_wanted = trace_path.is_some() || metrics_path.is_some();
    if capture_wanted {
        let untraced: Vec<&str> = ids
            .iter()
            .map(String::as_str)
            .filter(|id| {
                ALL.iter()
                    .any(|&(known, traced, _, _)| known == *id && !traced)
            })
            .collect();
        if !untraced.is_empty() {
            eprintln!(
                "note: no tracing instrumentation for: {} (runs untraced)",
                untraced.join(" ")
            );
        }
    }
    let jobs = jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let outputs = run_ids(&ids, quick, seed, jobs, capture_wanted, shards);

    // Deterministic assembly: everything below walks `outputs` in
    // scenario order, so every export is byte-identical for any `--jobs`.
    for o in &outputs {
        print!("{}", o.text);
    }
    let results: Vec<(String, Scalars)> = outputs
        .iter()
        .map(|o| (o.id.clone(), o.scalars.clone()))
        .collect();
    let perf_entries: Vec<_> = outputs.iter().map(|o| (o.id.clone(), o.perf)).collect();
    let perf = perf_json(&perf_entries);
    let mut cap = if capture_wanted {
        Capture::recording()
    } else {
        Capture::disabled()
    };
    for o in outputs {
        cap.metrics.merge(&o.metrics);
        if let Some(dump) = o.trace {
            cap.sink.absorb(dump);
        }
    }
    if let Some(path) = &json_path {
        if let Err(code) = write_file(path, &results_json(&results), "results") {
            return code;
        }
    }
    if let Some(path) = &perf_path {
        if let Err(code) = write_file(path, &perf, "perf samples") {
            return code;
        }
    }
    if let Some(path) = &trace_path {
        if let Err(code) = write_file(path, &cap.sink.to_chrome_json(), "trace") {
            return code;
        }
    }
    if let Some(path) = &metrics_path {
        if let Err(code) = write_file(path, &cap.metrics.to_json(), "metrics") {
            return code;
        }
    }
    ExitCode::SUCCESS
}
