//! Regenerates the paper's tables, figures, and quantified claims.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] <id>...
//! experiments all
//! ```
//!
//! Ids: `t1 t2 f1 e3a e3b e3c e3d e3e e4 e5 e6 e7 e8 e9 e10 nodes
//! abl-flit abl-adaptive abl-credits` or `all`.
//! `--quick` shortens op counts (CI-friendly; same shapes).

use fcc_bench::{
    exp_abl, exp_e10, exp_e3, exp_e4, exp_e5, exp_e6, exp_e7, exp_e8, exp_e9, exp_f1, exp_nodes,
    exp_t1, exp_t2,
};

const ALL: [&str; 19] = [
    "t1",
    "t2",
    "f1",
    "e3a",
    "e3b",
    "e3c",
    "e3d",
    "e3e",
    "e4",
    "e5",
    "e6",
    "e7",
    "e8",
    "e9",
    "e10",
    "nodes",
    "abl-flit",
    "abl-adaptive",
    "abl-credits",
];

fn run_one(id: &str, quick: bool) {
    println!("================================================================");
    match id {
        "t1" => println!("{}", exp_t1::run()),
        "t2" => println!("{}", exp_t2::run(quick)),
        "f1" => println!("{}", exp_f1::run()),
        "e3a" => println!("{}", exp_e3::run_a(quick)),
        "e3b" => println!("{}", exp_e3::run_b(quick)),
        "e3c" => println!("{}", exp_e3::run_c(quick)),
        "e3d" => println!("{}", exp_e3::run_d(quick)),
        "e3e" => println!("{}", exp_e3::run_e(quick)),
        "e4" => println!("{}", exp_e4::run(quick)),
        "e5" => println!("{}", exp_e5::run(quick)),
        "e6" => println!("{}", exp_e6::run(quick)),
        "e7" => println!("{}", exp_e7::run(quick)),
        "e8" => println!("{}", exp_e8::run(quick)),
        "e9" => println!("{}", exp_e9::run(quick)),
        "e10" => println!("{}", exp_e10::run(quick)),
        "nodes" => println!("{}", exp_nodes::run(quick)),
        "abl-flit" => println!("{}", exp_abl::run_flit(quick)),
        "abl-adaptive" => println!("{}", exp_abl::run_adaptive(quick)),
        "abl-credits" => println!("{}", exp_abl::run_credits(quick)),
        other => {
            eprintln!("unknown experiment id: {other}");
            eprintln!("known ids: {} all", ALL.join(" "));
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--quick")
        .map(String::as_str)
        .collect();
    if ids.is_empty() {
        eprintln!("usage: experiments [--quick] <id>... | all");
        eprintln!("ids: {}", ALL.join(" "));
        std::process::exit(2);
    }
    if ids.contains(&"all") {
        for id in ALL {
            run_one(id, quick);
        }
    } else {
        for id in ids {
            run_one(id, quick);
        }
    }
}
