//! E13 — pod-scale far-memory serving with per-tenant SLO accounting
//! ([`fcc_serve`]).
//!
//! The topology is E3x's 8-domain sharded chain. Each domain hosts one
//! [`KvStore`] whose values live on the domain's fabric-attached device,
//! six open-loop serving clients (tenants, Zipf keys, 90/10 read/write
//! mix, value sizes 64 B–4 KiB) driven by a shared **diurnal** rate
//! curve — a trough, a ramp, a peak plateau, a ramp back — plus the E12
//! interference pair: a local bulk streamer and a deep-window hog
//! camping a device four chain hops away. Three runs:
//!
//! 1. **base** — the commfabric baseline: requests move through an
//!    RDMA-style NIC (submission/completion pipeline) and bookkeeping
//!    runs on a communication-fabric-grade FAA (µs-class context
//!    switches, §3 D#4). Hogs and bulk stay silent: this is the rival
//!    *data path* at its best.
//! 2. **off** — the FCC path, ungoverned: GETs ride the paper's
//!    immediate eTrans bit, PUTs join an FAA version bump, hogs rampage.
//! 3. **on** — same with a [`fcc_sched::FabricScheduler`] at every
//!    switch *and* the same credit partition sourced into the
//!    transaction engine's per-tenant budgets: fabric admission and
//!    host-side pacing from one policy surface.
//!
//! SLO accounting splits by the request's *issue* time into peak and
//! trough windows; the headline family is per-tenant p99/p999 and
//! exact SLO attainment at peak: the baseline's bookkeeping backlog
//! blows the tail at peak load where FCC holds it, and scheduler-on
//! recovers the victim tail scheduler-off gives away to the hogs.
//!
//! Like E3x/E12, the scenario always runs on the sharded executor;
//! `shards` selects only worker fan-out — results and telemetry exports
//! are byte-identical for any value.

use std::fmt;

use fcc_core::{FaaEngine, FunctionTemplate, MigrationAgent, TransactionEngine};
use fcc_fabric::commfabric::{RdmaConfig, RdmaNic};
use fcc_fabric::credit::AllocPolicy;
use fcc_fabric::sharded::{sharded_chain, DomainSpec, ShardedFabric};
use fcc_fabric::switch::{FabricSwitch, QueueDiscipline};
use fcc_sched::{tenant_rates, CreditPartition, FabricScheduler, TenantShare};
use fcc_serve::{Backend, KvStore, KvStoreCfg, ServeClient, ServeClientCfg, StartClient};
use fcc_sim::{ComponentId, ShardedEngine, SimTime};
use fcc_telemetry::{record_deadlock, SloAccountant, TraceSink};
use fcc_workloads::{DiurnalModulator, ZipfStream};

use crate::capture::Capture;
use crate::exp_e3::{fabrex_device, fabrex_spec};
use crate::exp_e3x::{CROSS_LATENCY_NS, DOMAINS, TENANTS_PER_DOMAIN};
use crate::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};

/// Serving clients (victim tenants) per domain.
const CLIENTS_PER_DOMAIN: usize = 6;
/// Keys per domain store.
const KEYSPACE: u64 = 512;
/// Zipf skew of key popularity.
const ZIPF_THETA: f64 = 0.99;
/// Fraction of requests that are GETs.
const READ_FRACTION: f64 = 0.9;
/// One-way client↔store RPC hop.
const RPC_NS: f64 = 120.0;
/// Per-tenant SLO target on request latency.
const SLO_TARGET_NS: f64 = 5000.0;
/// Open-loop arrival rate in the trough (requests/µs per client).
const TROUGH_RATE: f64 = 0.3;
/// Open-loop arrival rate on the peak plateau.
const PEAK_RATE: f64 = 1.2;
/// The bulk streamer's per-op transfer size.
const BULK_BYTES: u32 = 4096;
/// The hog's window depth (as in E3x/E12).
const HOG_WINDOW: usize = 48;
/// Scheduler credit pool per admission window at each switch. Sized so
/// the serving store's floor covers its peak demand (~43 flits/µs
/// average, ~2x in an arrival cluster): admission must shape the
/// *interference*, not the data path it protects.
const SCHED_POOL: u32 = 1024;
/// Admission window length.
const SCHED_WINDOW_NS: f64 = 1000.0;
/// Wire rate the per-tenant eTrans budgets divide. This is the pod's
/// aggregate serving bandwidth (several 512 Gbit/s links), so a
/// tenant's budget paces sustained write streams without stretching a
/// single burst of 4 KiB PUTs past the SLO.
const BUDGET_GBPS: f64 = 2048.0;
/// Flit size used to convert credit allocations into burst bytes.
const BUDGET_FLIT_BYTES: u32 = 256;

const VICTIM_SHARE: TenantShare = TenantShare {
    group: 0,
    weight: 8,
    floor: 2,
};
const BULK_SHARE: TenantShare = TenantShare {
    group: 1,
    weight: 2,
    floor: 1,
};
const HOG_SHARE: TenantShare = TenantShare {
    group: 2,
    weight: 1,
    floor: 1,
};
/// The serving data path holds the lion's share: at peak one domain's
/// store sources ~43 flits/µs into its switch (two FHA rounds per
/// request, ~3 flits per value), twice that in an arrival cluster. The
/// floor covers the cluster case, so serving flits are never gated
/// behind the window even when every tenant demands.
const STORE_SHARE: TenantShare = TenantShare {
    group: 0,
    weight: 48,
    floor: 96,
};
/// Tenant ids for the per-domain serving stores (the client tenants
/// occupy `0..DOMAINS * TENANTS_PER_DOMAIN`).
const STORE_TENANT_BASE: u32 = (DOMAINS * TENANTS_PER_DOMAIN) as u32;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Base,
    Off,
    On,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Base => "base",
            Mode::Off => "off",
            Mode::On => "on",
        }
    }

    fn salt(self) -> u64 {
        match self {
            Mode::Base => 0xBA5E,
            Mode::Off => 0x0FF0,
            Mode::On => 0x0A0A,
        }
    }

    fn is_fcc(self) -> bool {
        !matches!(self, Mode::Base)
    }
}

/// Outcome of one mode's run.
struct ModeRun {
    /// Merged per-tenant SLO accounting, requests issued at peak.
    peak: SloAccountant,
    /// Merged per-tenant SLO accounting, requests issued in the trough.
    trough: SloAccountant,
    /// Store-side anomalies: lost version bumps + failed allocations +
    /// index handles that no longer resolve.
    lost_objects: u64,
    /// Requests completed by clients.
    completed: u64,
    /// Per-tenant ledger audit findings across all governed switches.
    violations: u64,
    /// Events dispatched.
    events: u64,
}

/// E13 outcome.
pub struct E13Result {
    /// Serving tenants (clients) across the pod.
    pub tenants: usize,
    /// Requests completed across all three runs.
    pub requests: u64,
    /// Commfabric baseline: peak-window p99 (ns).
    pub base_p99_peak_ns: f64,
    /// Commfabric baseline: trough-window p99 (ns).
    pub base_p99_trough_ns: f64,
    /// Commfabric baseline: exact SLO attainment at peak.
    pub base_attain_peak: f64,
    /// FCC ungoverned: peak-window p99 (ns).
    pub off_p99_peak_ns: f64,
    /// FCC governed: peak-window p99 (ns).
    pub on_p99_peak_ns: f64,
    /// FCC governed: trough-window p99 (ns).
    pub on_p99_trough_ns: f64,
    /// FCC governed: peak-window p999 (ns).
    pub on_p999_peak_ns: f64,
    /// FCC ungoverned: exact SLO attainment at peak.
    pub off_attain_peak: f64,
    /// FCC governed: exact SLO attainment at peak.
    pub on_attain_peak: f64,
    /// Store-side anomalies across every mode (acceptance: zero).
    pub lost_objects: u64,
    /// Ledger audit findings across every governed switch (acceptance:
    /// zero).
    pub ledger_violations: u64,
    /// Events dispatched across all three runs (deterministic).
    pub total_events: u64,
}

impl E13Result {
    /// Baseline p99 over governed-FCC p99 at peak (>1: FCC wins).
    pub fn fcc_speedup_p99(&self) -> f64 {
        self.base_p99_peak_ns / self.on_p99_peak_ns.max(1e-9)
    }

    /// Ungoverned over governed p99 at peak (>1: the scheduler recovers
    /// tail the hogs were eating).
    pub fn sched_recovery_p99(&self) -> f64 {
        self.off_p99_peak_ns / self.on_p99_peak_ns.max(1e-9)
    }

    /// The SLO acceptance bound: governed FCC meets the target for at
    /// least 95% of peak requests (the residual misses are the open
    /// loop's own arrival clusters — they persist with interference
    /// and budgets off), beats the baseline's attainment, and the
    /// scheduler does not lose tail to the hogs.
    pub fn slo_bounded(&self) -> bool {
        self.on_attain_peak >= 0.95
            && self.on_attain_peak >= self.base_attain_peak
            && self.on_p99_peak_ns <= self.off_p99_peak_ns * 1.05
    }
}

/// Runs E13 with one worker thread.
pub fn run_e13(quick: bool) -> E13Result {
    run_e13_captured_seeded(quick, &mut Capture::disabled(), 0, 1)
}

/// Runs E13, feeding telemetry into `cap`, with `shards` worker threads.
pub fn run_e13_captured_seeded(
    quick: bool,
    cap: &mut Capture,
    seed: u64,
    shards: usize,
) -> E13Result {
    let base = run_mode(Mode::Base, quick, cap, seed, shards);
    let off = run_mode(Mode::Off, quick, cap, seed, shards);
    let on = run_mode(Mode::On, quick, cap, seed, shards);
    let p = |a: &SloAccountant, q: f64| a.merged().quantile(q) as f64 / 1e3;
    E13Result {
        tenants: DOMAINS * CLIENTS_PER_DOMAIN,
        requests: base.completed + off.completed + on.completed,
        base_p99_peak_ns: p(&base.peak, 0.99),
        base_p99_trough_ns: p(&base.trough, 0.99),
        base_attain_peak: base.peak.overall_attainment(),
        off_p99_peak_ns: p(&off.peak, 0.99),
        on_p99_peak_ns: p(&on.peak, 0.99),
        on_p99_trough_ns: p(&on.trough, 0.99),
        on_p999_peak_ns: p(&on.peak, 0.999),
        off_attain_peak: off.peak.overall_attainment(),
        on_attain_peak: on.peak.overall_attainment(),
        lost_objects: base.lost_objects + off.lost_objects + on.lost_objects,
        ledger_violations: base.violations + off.violations + on.violations,
        total_events: base.events + off.events + on.events,
    }
}

/// The pod-wide credit partition: each domain's store holds a floored
/// majority share (its flits carry every client's requests), the
/// serving clients hold modest shares (they emit no switch flits — the
/// shares exist so `tenant_rates` derives their PUT budgets from the
/// same policy), the bulk streamer a small share, the hog a minimum.
fn pod_partition() -> CreditPartition {
    let mut part = CreditPartition::new(SCHED_POOL);
    for d in 0..DOMAINS {
        for h in 0..TENANTS_PER_DOMAIN {
            let tenant = (d * TENANTS_PER_DOMAIN + h) as u32;
            let share = if h < CLIENTS_PER_DOMAIN {
                VICTIM_SHARE
            } else if h == CLIENTS_PER_DOMAIN {
                BULK_SHARE
            } else {
                HOG_SHARE
            };
            part.add_tenant(tenant, share);
        }
        part.add_tenant(STORE_TENANT_BASE + d as u32, STORE_SHARE);
    }
    part
}

/// The scheduler for domain `d`'s switch: the pod-wide policy with only
/// the domain's own hosts mapped — admission gates at each tenant's
/// edge (the E12 finding). The migration-agent hosts map to the store's
/// tenant: the partition is work-conserving, so leaving the serving
/// data path unmapped would let bulk and hog traffic absorb the store's
/// unused share and starve it anyway.
fn scheduler_for(fabric: &ShardedFabric, d: usize) -> FabricScheduler {
    let mut sched = FabricScheduler::new(pod_partition(), SimTime::from_ns(SCHED_WINDOW_NS));
    for (h, host) in fabric.domains[d].hosts.iter().enumerate() {
        let tenant = if h < TENANTS_PER_DOMAIN {
            (d * TENANTS_PER_DOMAIN + h) as u32
        } else {
            STORE_TENANT_BASE + d as u32
        };
        sched.map_node(host.node, tenant);
    }
    sched
}

/// Preloaded value size for a key: 60% 64 B, 30% 1 KiB, 10% 4 KiB.
fn value_bytes(key: u64) -> u32 {
    match key % 10 {
        0..=5 => 64,
        6..=8 => 1024,
        _ => 4096,
    }
}

/// The diurnal rate curve over `horizon`, and the two SLO measurement
/// windows: trough until 25%, ramp to the peak plateau over [40%, 70%),
/// ramp back down by 85%. Only the flat segments are measured — the
/// ramps (and the post-peak tail, which drains whatever backlog the
/// peak built) are served but unaccounted, so the trough numbers are
/// not charged for the peak's congestion.
type DiurnalPlan = (Vec<(SimTime, f64)>, (SimTime, SimTime), (SimTime, SimTime));

fn diurnal(horizon: SimTime) -> DiurnalPlan {
    let at = |f: f64| SimTime::from_ns(horizon.as_ns() * f);
    let curve = vec![
        (SimTime::ZERO, TROUGH_RATE),
        (at(0.25), TROUGH_RATE),
        (at(0.40), PEAK_RATE),
        (at(0.70), PEAK_RATE),
        (at(0.85), TROUGH_RATE),
    ];
    (curve, (at(0.40), at(0.70)), (SimTime::ZERO, at(0.25)))
}

#[allow(clippy::too_many_lines)]
fn run_mode(mode: Mode, quick: bool, cap: &mut Capture, seed: u64, shards: usize) -> ModeRun {
    let horizon = if quick {
        SimTime::from_us(30.0)
    } else {
        SimTime::from_us(120.0)
    };
    let (curve, peak_window, trough_window) = diurnal(horizon);
    let slo_target = SimTime::from_ns(SLO_TARGET_NS);
    let mut sharded = ShardedEngine::new(0xE130 ^ seed ^ mode.salt(), DOMAINS);
    let mut spec = fabrex_spec(QueueDiscipline::Fifo, AllocPolicy::Fair);
    spec.fha_outstanding = 128;
    // Hosts 0..TENANTS_PER_DOMAIN face tenants; the last two carry the
    // store's migration agents. Four devices per domain: values stripe
    // across devices 0-1 (keys pin round-robin), staging slots across
    // devices 2-3, so a peak arrival cluster (~2x the plateau rate)
    // stays under every controller's occupancy instead of convoying on
    // one.
    let domains = (0..DOMAINS)
        .map(|_| DomainSpec {
            n_hosts: TENANTS_PER_DOMAIN + 2,
            devices: (0..4).map(|_| fabrex_device()).collect(),
        })
        .collect();
    let fabric: ShardedFabric = sharded_chain(
        &mut sharded,
        spec,
        domains,
        SimTime::from_ns(CROSS_LATENCY_NS),
    );
    if mode == Mode::On {
        for (d, topo) in fabric.domains.iter().enumerate() {
            let sched = scheduler_for(&fabric, d);
            let engine = sharded.engine_mut(d);
            for &sw in &topo.switches {
                engine
                    .component_mut::<FabricSwitch>(sw)
                    .install_scheduler(sched.clone());
            }
        }
    }
    let mut sinks: Vec<TraceSink> = Vec::new();
    if cap.is_enabled() {
        for (d, topo) in fabric.domains.iter().enumerate() {
            let sink = TraceSink::recording();
            sink.begin_process(&format!("e13-{}-d{d}", mode.label()));
            topo.enable_tracing(sharded.engine_mut(d), &sink);
            sinks.push(sink);
        }
    }
    // Per-domain serving stacks + the interference pair.
    let mut stores: Vec<ComponentId> = Vec::new();
    let mut clients: Vec<(usize, ComponentId)> = Vec::new();
    for d in 0..DOMAINS {
        let local_range = fabric.domains[d].devices[0].range;
        let data_bases: Vec<u64> = (0..2)
            .map(|i| fabric.domains[d].devices[i].range.base)
            .collect();
        let staging_bases: Vec<u64> = (2..4)
            .map(|i| fabric.domains[d].devices[i].range.base)
            .collect();
        let remote_range = fabric.domains[(d + DOMAINS / 2) % DOMAINS].devices[0].range;
        // Bookkeeping: fabric-grade active messages on the FCC path
        // (shared-memory function launch, ~100 ns context switch). On
        // the baseline the same version bump is an RPC round through the
        // communication fabric — ~2 µs of marshalling and kernel
        // transitions per bump, µs-grade context switches (§3 D#4). The
        // diurnal curve makes that the story: the baseline's bookkeeping
        // absorbs the trough but saturates at the peak arrival rate.
        let (hit_ns, ver_ns, ctx_ns) = if mode.is_fcc() {
            (50.0, 80.0, 100.0)
        } else {
            (50.0, 2000.0, 1000.0)
        };
        let backend = if mode.is_fcc() {
            // A migration agent pipelines chunks within ONE job at a
            // time, so for single-chunk serving ops the agent count is
            // the data path's job concurrency. Each op is two sequential
            // FHA rounds (~3 µs), so peak arrival (7.2 req/µs) keeps
            // ~22 jobs in flight — 48 agents (24 per FHA host,
            // fha_outstanding = 128) model a 48-deep job table running
            // at ~45% peak utilization, deep enough that an arrival
            // cluster does not convoy the queue.
            let agents: Vec<ComponentId> = (0..48)
                .map(|a| {
                    let fha = fabric.domains[d].hosts[TENANTS_PER_DOMAIN + a % 2].fha;
                    sharded.engine_mut(d).add_component(
                        format!("mig-{}-d{d}a{a}", mode.label()),
                        MigrationAgent::new(fha, 4096, 8),
                    )
                })
                .collect();
            let mut te = TransactionEngine::new(agents);
            if mode == Mode::On {
                // Same partition as the switches: one policy surface
                // for fabric admission and host-side pacing.
                te.source_budgets(&tenant_rates(
                    &pod_partition(),
                    BUDGET_GBPS,
                    BUDGET_FLIT_BYTES,
                ));
            }
            let etrans = sharded
                .engine_mut(d)
                .add_component(format!("etrans-{}-d{d}", mode.label()), te);
            Backend::Fabric { etrans }
        } else {
            let nic = sharded.engine_mut(d).add_component(
                format!("nic-{}-d{d}", mode.label()),
                RdmaNic::new(RdmaConfig::kernel_bypass()),
            );
            Backend::Rdma { nic }
        };
        let faa = sharded.engine_mut(d).add_component(
            format!("faa-{}-d{d}", mode.label()),
            FaaEngine::new(
                vec![
                    FunctionTemplate::uniform(0, SimTime::from_ns(hit_ns), 0.0, 1 << 16),
                    FunctionTemplate::uniform(1, SimTime::from_ns(ver_ns), 0.0, 1 << 16),
                ],
                SimTime::from_ns(ctx_ns),
                8,
            ),
        );
        let mut store = KvStore::new(KvStoreCfg {
            backend,
            faa,
            hit_fn: 0,
            version_fn: 1,
            data_bases: data_bases.clone(),
            staging_bases: staging_bases.clone(),
            capacity: 1 << 26,
            rpc_latency: SimTime::from_ns(RPC_NS),
            host: 0,
        });
        for key in 0..KEYSPACE {
            // The device holds 64 MiB of heap over 512 small keys; the
            // preload cannot fail.
            #[allow(clippy::expect_used)]
            store.preload(key, value_bytes(key)).expect("keyspace fits");
        }
        let store_id = sharded
            .engine_mut(d)
            .add_component(format!("kv-{}-d{d}", mode.label()), store);
        stores.push(store_id);
        for h in 0..CLIENTS_PER_DOMAIN {
            let tenant = (d * TENANTS_PER_DOMAIN + h) as u32;
            let mut client = ServeClient::new(ServeClientCfg {
                store: store_id,
                tenant,
                arrivals: DiurnalModulator::new(curve.clone(), SimTime::ZERO),
                keys: ZipfStream::new(KEYSPACE, ZIPF_THETA),
                read_fraction: READ_FRACTION,
                value_sizes: vec![(64, 0.6), (1024, 0.3), (4096, 0.1)],
                rpc_latency: SimTime::from_ns(RPC_NS),
                stop_at: horizon,
                slo_target,
                peak: peak_window,
                trough: trough_window,
                // The workload is identical across modes: client seeds
                // mix the run seed and the tenant, never the mode.
                seed: 0xC11E ^ (seed << 8) ^ u64::from(tenant),
            });
            if let Some(sink) = sinks.get(d) {
                client.set_trace(sink.track(&format!("client-d{d}h{h}")));
            }
            let engine = sharded.engine_mut(d);
            let cid = engine.add_component(format!("client-{}-d{d}h{h}", mode.label()), client);
            engine.post(cid, SimTime::ZERO, StartClient);
            clients.push((d, cid));
        }
        // The E12 interference pair rides along on the FCC runs.
        if mode.is_fcc() {
            for h in [CLIENTS_PER_DOMAIN, CLIENTS_PER_DOMAIN + 1] {
                let fha = fabric.domains[d].hosts[h].fha;
                let (base, op_bytes, window) = if h == CLIENTS_PER_DOMAIN {
                    (local_range.base + (1 << 27), BULK_BYTES, 8)
                } else {
                    (remote_range.base + (1 << 27), 64, HOG_WINDOW)
                };
                let cfg = LoadCfg {
                    fha,
                    base,
                    len: 1 << 20,
                    op_bytes,
                    write: true,
                    window,
                    count: None,
                    stop_at: horizon,
                    pattern: AddrPattern::Sequential,
                };
                let engine = sharded.engine_mut(d);
                let lg = engine
                    .add_component(format!("load-{}-d{d}h{h}", mode.label()), LoadGen::new(cfg));
                engine.post(lg, SimTime::ZERO, StartLoad);
            }
        }
    }
    sharded.run(shards);
    // Deterministic harvest, in domain order.
    let mut violations = 0u64;
    for d in 0..DOMAINS {
        let engine = sharded.engine(d);
        for &sw in &fabric.domains[d].switches {
            violations += engine.component::<FabricSwitch>(sw).audit().findings.len() as u64;
        }
    }
    let mut lost_objects = 0u64;
    for (d, &store_id) in stores.iter().enumerate() {
        let s = sharded.engine(d).component::<KvStore>(store_id);
        lost_objects += s.lost_updates.get() + s.alloc_failures.get() + s.integrity_violations();
        if cap.is_enabled() {
            let prefix = format!("e13-{}-d{d}.kv.", mode.label());
            cap.metrics
                .add_counter(&format!("{prefix}gets"), s.gets.get());
            cap.metrics
                .add_counter(&format!("{prefix}puts"), s.puts.get());
            cap.metrics
                .add_counter(&format!("{prefix}hits"), s.hits.get());
            cap.metrics
                .add_counter(&format!("{prefix}misses"), s.misses.get());
            cap.metrics
                .record_histogram(&format!("{prefix}service_ps"), &s.service);
        }
    }
    let mut peak = SloAccountant::new(slo_target);
    let mut trough = SloAccountant::new(slo_target);
    let mut completed = 0u64;
    for &(d, cid) in &clients {
        let c = sharded.engine(d).component::<ServeClient>(cid);
        peak.merge(c.peak_slo());
        trough.merge(c.trough_slo());
        completed += c.completed.get();
    }
    if cap.is_enabled() {
        peak.export(&format!("e13-{}-peak.", mode.label()), &mut cap.metrics);
        trough.export(&format!("e13-{}-trough.", mode.label()), &mut cap.metrics);
    }
    for (d, sink) in sinks.into_iter().enumerate() {
        if let Some(dump) = sink.into_dump() {
            cap.sink.absorb(dump);
        }
        let engine = sharded.engine(d);
        fabric.domains[d].collect_metrics(
            engine,
            &mut cap.metrics,
            &format!("e13-{}-d{d}.", mode.label()),
        );
        if let Some(report) = engine.deadlock_report() {
            record_deadlock(&cap.sink, &mut cap.metrics, &report, engine.now());
        }
    }
    ModeRun {
        peak,
        trough,
        lost_objects,
        completed,
        violations,
        events: sharded.total_events(),
    }
}

impl fmt::Display for E13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E13 — far-memory serving, {} tenants, diurnal open-loop load",
            self.tenants
        )?;
        let pct = |a: f64| format!("{:.2}%", a * 100.0);
        let rows = vec![
            vec![
                "commfabric base".to_string(),
                format!("{:.0}", self.base_p99_peak_ns),
                format!("{:.0}", self.base_p99_trough_ns),
                pct(self.base_attain_peak),
            ],
            vec![
                "fcc, sched off".to_string(),
                format!("{:.0}", self.off_p99_peak_ns),
                "-".to_string(),
                pct(self.off_attain_peak),
            ],
            vec![
                "fcc, sched on".to_string(),
                format!("{:.0}", self.on_p99_peak_ns),
                format!("{:.0}", self.on_p99_trough_ns),
                pct(self.on_attain_peak),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(
                &[
                    "mode",
                    "peak p99 (ns)",
                    "trough p99 (ns)",
                    "peak SLO attain"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "governed peak p999 {:.0} ns; fcc beats base {:.2}x at peak p99; \
             scheduler recovers {:.2}x; {} requests; {} lost objects; \
             {} ledger violations; {} events",
            self.on_p999_peak_ns,
            self.fcc_speedup_p99(),
            self.sched_recovery_p99(),
            self.requests,
            self.lost_objects,
            self.ledger_violations,
            self.total_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar results and event counts are identical for any worker
    /// fan-out (shards select threads, not decomposition).
    #[test]
    fn results_identical_across_worker_counts() {
        let base = run_e13_captured_seeded(true, &mut Capture::disabled(), 7, 1);
        for workers in [2, 4] {
            let r = run_e13_captured_seeded(true, &mut Capture::disabled(), 7, workers);
            assert_eq!(r.total_events, base.total_events, "workers={workers}");
            assert_eq!(r.requests, base.requests);
            assert_eq!(r.base_p99_peak_ns, base.base_p99_peak_ns);
            assert_eq!(r.off_p99_peak_ns, base.off_p99_peak_ns);
            assert_eq!(r.on_p99_peak_ns, base.on_p99_peak_ns);
            assert_eq!(r.on_attain_peak, base.on_attain_peak);
        }
    }

    /// The acceptance criteria: nothing lost, ledgers clean, FCC meets
    /// the SLO the baseline misses at peak, the scheduler recovers tail.
    #[test]
    fn serving_slo_acceptance() {
        let r = run_e13(true);
        assert_eq!(r.tenants, 48);
        assert!(r.requests > 1000, "clients ran: {} requests", r.requests);
        assert_eq!(r.lost_objects, 0, "no lost updates/allocations/handles");
        assert_eq!(r.ledger_violations, 0, "tenant ledger audit must be clean");
        assert!(
            r.slo_bounded(),
            "SLO bound failed: on_attain_peak {:.4}, base_attain_peak {:.4}, \
             on p99 {:.0} ns vs off p99 {:.0} ns",
            r.on_attain_peak,
            r.base_attain_peak,
            r.on_p99_peak_ns,
            r.off_p99_peak_ns
        );
        assert!(
            r.base_p99_peak_ns > r.base_p99_trough_ns,
            "the baseline's peak must be worse than its trough: {:.0} vs {:.0}",
            r.base_p99_peak_ns,
            r.base_p99_trough_ns
        );
    }
}
