//! Omega-testbed calibration for the fabric experiments.
//!
//! Table 2 anchors the end-to-end numbers; the decomposition into link,
//! switch, and device parameters below is our estimate of the FPGA-based
//! IntelliProp Omega testbed (documented in `EXPERIMENTS.md`):
//!
//! * Flex Bus links: Gen5 ×16, 68 B flits, 180 ns one-way SerDes+cable
//!   (FPGA transceivers are slow).
//! * Switch: 95 ns per-flit forwarding (the paper quotes <100 ns for the
//!   FabreX part).
//! * FAM device: 641/679 ns read/write service behind a pipelined
//!   controller front-end (Table 2's 1575/1613 ns end-to-end after two
//!   link crossings each way, the switch, and the L1/L2 lookup).
//! * Memory-level parallelism: 4 outstanding fabric loads per core
//!   (Table 2's 2.5 MOPS ≈ 4 / 1575 ns).

use fcc_fabric::endpoint::{Endpoint, PipelinedMemory};
use fcc_fabric::switch::SwitchConfig;
use fcc_fabric::topology::TopologySpec;
use fcc_proto::flit::FlitMode;
use fcc_proto::link::CreditConfig;
use fcc_proto::phys::{Bifurcation, LinkSpeed, PhysConfig};
use fcc_sim::SimTime;

/// One-way link propagation (SerDes + cable) on the calibrated testbed.
pub fn link_propagation() -> SimTime {
    SimTime::from_ns(180.0)
}

/// The calibrated Flex Bus physical configuration.
pub fn phys() -> PhysConfig {
    PhysConfig {
        speed: LinkSpeed::Gen5,
        width: Bifurcation::X16,
        flit_mode: FlitMode::Flit68,
        propagation: link_propagation(),
    }
}

/// The calibrated switch configuration (FabreX-like forwarding latency).
pub fn switch_cfg() -> SwitchConfig {
    SwitchConfig {
        phys: phys(),
        fwd_latency: SimTime::from_ns(95.0),
        ..SwitchConfig::fabrex_like()
    }
}

/// Calibrated per-core fabric memory-level parallelism.
pub const REMOTE_WINDOW: usize = 4;

/// The calibrated FAM module.
pub fn fam(capacity: u64) -> Box<dyn Endpoint> {
    Box::new(PipelinedMemory::new(
        SimTime::from_ns(641.0),
        SimTime::from_ns(679.0),
        SimTime::from_ns(120.0),
        capacity,
    ))
}

/// A fast staging/near-memory device (used by the E4 managed-movement
/// experiment as the migration destination).
pub fn staging(capacity: u64) -> Box<dyn Endpoint> {
    Box::new(PipelinedMemory::new(
        SimTime::from_ns(120.0),
        SimTime::from_ns(130.0),
        SimTime::from_ns(20.0),
        capacity,
    ))
}

/// Link-layer credits sized to the bandwidth-delay product of the long
/// calibrated links (512 Gbit/s × ~400 ns RTT ≈ 375 flits), so bulk
/// transfers are not throttled by credit-return latency.
pub fn credit_cfg() -> CreditConfig {
    CreditConfig {
        buffer_flits: 512,
        overcommit: 1.0,
        return_threshold: 16,
        retry_depth: 4096,
    }
}

/// Topology spec with the calibration applied.
pub fn topo_spec() -> TopologySpec {
    TopologySpec {
        switch: SwitchConfig {
            credit: credit_cfg(),
            ..switch_cfg()
        },
        credit: credit_cfg(),
        fha_outstanding: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_constants() {
        assert!((phys().raw_gbps() - 512.0).abs() < 1e-9);
        assert_eq!(switch_cfg().fwd_latency, SimTime::from_ns(95.0));
        assert_eq!(REMOTE_WINDOW, 4);
    }
}
