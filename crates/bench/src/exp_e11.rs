//! E11 — online composition: churn under load.
//!
//! The paper's composable infrastructure keeps serving while chassis
//! join and leave (§2 observation 3, §3 D#5). E11 quantifies that claim
//! by running the same closed-loop Zipf workload over an
//! [`ElasticCluster`] under three regimes:
//!
//! * **steady** — fixed membership; the latency baseline.
//! * **managed** — a chassis hot-adds at T/4 (two-phase routing update),
//!   then the working-set node drains at T/2: live objects evacuate
//!   through throttled eTrans jobs and the node detaches at
//!   ledger-verified quiescence. The claim under test: zero lost
//!   objects, no deadlock, and bounded p99 inflation.
//! * **yank** — the same removal with no drain and no quiescence guard.
//!   Resident objects are destroyed and in-flight flits drop as
//!   unroutable, wedging the closed loop — the failure mode the managed
//!   path exists to prevent.
//!
//! With `--trace`, each scenario exports its reconfiguration epochs as
//! Perfetto instants on the `reconfig` track, and a wedged yank lands a
//! deadlock report in the trace.

use std::fmt;
use std::sync::Arc;

use fcc_core::heap::{FabricBox, PlacementHint};
use fcc_elastic::{DrainReason, ElasticCluster, HeapLoadGen, LockClusterState, StartLoad};
use fcc_fabric::topology::TopologySpec;
use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc_sim::{Engine, SimTime};

use crate::capture::Capture;
use crate::fmt_table;

/// One scenario's outcome.
pub struct E11Scenario {
    /// Scenario label (`e11-steady`, `e11-managed`, `e11-yank`).
    pub label: &'static str,
    /// p99 operation latency, ns.
    pub p99_ns: f64,
    /// Mean operation latency, ns.
    pub mean_ns: f64,
    /// Operations completed.
    pub completed: u64,
    /// Operations issued.
    pub issued: u64,
    /// Objects whose byte images were destroyed.
    pub lost_objects: u64,
    /// Working-set objects with intact byte images at the end.
    pub survived: usize,
    /// Working-set size.
    pub objects: usize,
    /// Whether the run ended wedged (stranded in-flight work).
    pub deadlocked: bool,
    /// Reconfiguration epochs that elapsed.
    pub epochs: u64,
    /// Evacuation jobs submitted.
    pub evac_jobs: u64,
    /// Evacuation bytes submitted.
    pub evac_bytes: u64,
}

/// E11 outcome.
pub struct E11Result {
    /// Fixed membership baseline.
    pub steady: E11Scenario,
    /// Hot-add + managed drain under load.
    pub managed: E11Scenario,
    /// Unmanaged removal under load.
    pub yank: E11Scenario,
}

impl E11Result {
    /// Managed-drain p99 over the steady baseline.
    pub fn managed_p99_inflation(&self) -> f64 {
        self.managed.p99_ns / self.steady.p99_ns
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Steady,
    Managed,
    Yank,
}

fn fam() -> MemNodeProfile {
    MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 20)
}

fn run_scenario(mode: Mode, quick: bool, cap: &mut Capture, seed: u64) -> E11Scenario {
    let horizon = if quick {
        SimTime::from_us(200.0)
    } else {
        SimTime::from_us(800.0)
    };
    let (label, salt) = match mode {
        Mode::Steady => ("e11-steady", 0u64),
        Mode::Managed => ("e11-managed", 1),
        Mode::Yank => ("e11-yank", 2),
    };
    let mut engine = Engine::new((0xE11 + salt) ^ seed);
    let cluster =
        ElasticCluster::build(&mut engine, TopologySpec::default(), 1, vec![fam(), fam()]);
    if cap.is_enabled() {
        cap.sink.begin_process(label);
        cluster.enable_tracing(&mut engine, &cap.sink);
    }
    // Working set: 4 KiB objects, all placed on one node (identical
    // tiers, stable placement order) — that node is the churn victim.
    let n_objs = if quick { 16 } else { 64 };
    let objs: Vec<FabricBox> = {
        let mut st = cluster.state().lock_state();
        (0..n_objs)
            .map(|i| {
                let obj = st
                    .heap
                    .alloc(4096, PlacementHint::Auto)
                    .expect("working set fits");
                st.store.insert(obj, 0xE11_5EED ^ i as u64);
                obj
            })
            .collect()
    };
    let victim = cluster
        .state()
        .lock_state()
        .heap
        .node_of(objs[0])
        .expect("freshly allocated");
    // Background evacuation is throttled so it contends with — but
    // cannot starve — the foreground window on the shared FHA.
    cluster.set_evacuation_limit(&mut engine, 16.0, 16 * 1024);
    let quarter = SimTime::from_ps(horizon.as_ps() / 4);
    let half = SimTime::from_ps(horizon.as_ps() / 2);
    match mode {
        Mode::Steady => {}
        Mode::Managed => {
            let c = cluster.clone();
            engine.call_at(quarter, move |e| {
                c.hot_add(e, fam());
            });
            let c = cluster.clone();
            engine.call_at(half, move |e| {
                c.begin_drain(e, victim, DrainReason::Planned);
            });
        }
        Mode::Yank => {
            let c = cluster.clone();
            engine.call_at(half, move |e| {
                c.naive_yank(e, victim);
            });
        }
    }
    let fha = cluster.state().lock_state().topo.hosts[0].fha;
    let gen = engine.add_component(
        "e11-loadgen",
        HeapLoadGen::new(
            Arc::clone(cluster.state()),
            fha,
            100,
            objs.clone(),
            1.1,
            8,
            horizon,
        ),
    );
    engine.post(gen, SimTime::ZERO, StartLoad);
    engine.run_until_idle();

    let g = engine.component::<HeapLoadGen>(gen);
    let p99_ns = g.latency.quantile(0.99) as f64 / 1000.0;
    let mean_ns = g.latency.mean() / 1000.0;
    let completed = g.completed.get();
    let issued = g.issued.get();
    let deadlock = engine.deadlock_report();
    let (lost_objects, survived, epochs, evac_jobs, evac_bytes) = {
        let st = cluster.state().lock_state();
        (
            st.lost_objects,
            st.surviving(&objs),
            st.epoch,
            st.evac_jobs,
            st.evac_bytes,
        )
    };
    if cap.is_enabled() {
        cluster.collect_metrics(&engine, &mut cap.metrics, &format!("{label}."));
        if let Some(report) = &deadlock {
            fcc_telemetry::record_deadlock(&cap.sink, &mut cap.metrics, report, engine.now());
        }
    }
    E11Scenario {
        label,
        p99_ns,
        mean_ns,
        completed,
        issued,
        lost_objects,
        survived,
        objects: objs.len(),
        deadlocked: deadlock.is_some(),
        epochs,
        evac_jobs,
        evac_bytes,
    }
}

/// Runs E11.
pub fn run(quick: bool) -> E11Result {
    run_captured(quick, &mut Capture::disabled())
}

/// Runs E11, feeding telemetry into `cap`. Scenario labels:
/// `e11-steady`, `e11-managed`, `e11-yank`.
pub fn run_captured(quick: bool, cap: &mut Capture) -> E11Result {
    run_captured_seeded(quick, cap, 0)
}

/// [`run_captured`] with a caller-supplied RNG seed salt.
pub fn run_captured_seeded(quick: bool, cap: &mut Capture, seed: u64) -> E11Result {
    E11Result {
        steady: run_scenario(Mode::Steady, quick, cap, seed),
        managed: run_scenario(Mode::Managed, quick, cap, seed),
        yank: run_scenario(Mode::Yank, quick, cap, seed),
    }
}

impl fmt::Display for E11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E11 — online composition: churn under load")?;
        let row = |s: &E11Scenario| {
            vec![
                s.label.to_string(),
                format!("{:.0}", s.p99_ns),
                format!("{:.0}", s.mean_ns),
                format!("{}/{}", s.completed, s.issued),
                format!("{}", s.lost_objects),
                format!("{}/{}", s.survived, s.objects),
                if s.deadlocked { "WEDGED" } else { "no" }.to_string(),
                format!("{}", s.epochs),
            ]
        };
        let rows = vec![row(&self.steady), row(&self.managed), row(&self.yank)];
        write!(
            f,
            "{}",
            fmt_table(
                &[
                    "scenario",
                    "p99 ns",
                    "mean ns",
                    "done/issued",
                    "lost",
                    "survived",
                    "deadlocked",
                    "epochs"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "managed drain: {} evacuation jobs, {} B moved, p99 inflation {:.2}x",
            self.managed.evac_jobs,
            self.managed.evac_bytes,
            self.managed_p99_inflation()
        )?;
        writeln!(
            f,
            "naive yank: {} objects destroyed, closed loop {}",
            self.yank.lost_objects,
            if self.yank.deadlocked {
                "wedged (stranded in-flight ops)"
            } else {
                "survived"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managed_drain_is_lossless_while_yank_is_not() {
        let r = run(true);
        assert_eq!(r.managed.lost_objects, 0, "managed drain loses nothing");
        assert_eq!(r.managed.survived, r.managed.objects);
        assert!(!r.managed.deadlocked, "managed drain never wedges");
        // AddStarted, NodeAnnounced, DrainStarted, EvacuationComplete,
        // NodeDetached.
        assert_eq!(r.managed.epochs, 5);
        assert!(r.managed.evac_jobs > 0, "objects actually moved");
        // The naive yank measurably degrades: data loss and a wedge.
        assert!(r.yank.lost_objects > 0, "yank destroys residents");
        assert!(r.yank.deadlocked, "yank strands the closed loop");
        // The managed path keeps serving: more completions than the
        // wedged yank run, and finite p99 inflation.
        assert!(r.managed.completed > r.yank.completed);
        assert!(r.managed_p99_inflation().is_finite());
    }
}
