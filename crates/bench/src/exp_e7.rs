//! E7 — design principle #4: the central arbiter on dedicated lanes.
//!
//! Part 1 measures the unloaded control-lane RTT (the paper argues a 64 B
//! flit RTT of ≈200 ns makes a dedicated lane cheap). Part 2 re-runs the
//! E3c contention scenario with the arbiter: the bursty flows *reserve*
//! bandwidth, the switch enforces the reservations, and fairness returns.

use std::fmt;

use fcc_core::arbiter_client::{ArbiterClient, ClientRequest, FutureResolved};
use fcc_fabric::arbiter::{ArbiterOp, FabricArbiter};
use fcc_fabric::credit::AllocPolicy;
use fcc_fabric::switch::{FlowId, QueueDiscipline, SwitchConfig};
use fcc_fabric::topology::{self, TopologySpec, FAM_BASE};
use fcc_proto::phys::PhysConfig;
use fcc_sim::{jain_fairness, Component, Ctx, Engine, Msg, SimTime};

use crate::exp_e3;
use crate::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};

/// E7 outcome.
pub struct E7Result {
    /// Unloaded control-lane query RTT (ns).
    pub control_rtt_ns: f64,
    /// Per-flow throughput without reservations `(hog, bursty mean)`.
    pub uncoordinated: (f64, f64),
    /// Per-flow throughput with arbiter reservations `(hog, bursty mean)`.
    pub arbitrated: (f64, f64),
    /// Jain fairness index across the three flows, before/after.
    pub jain_before: f64,
    /// Jain fairness after reservations.
    pub jain_after: f64,
}

struct Waiter {
    resolved: Vec<FutureResolved>,
}

impl Component for Waiter {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        self.resolved
            .push(msg.downcast::<FutureResolved>().expect("future"));
    }
}

/// Measures the unloaded control-lane RTT through the client.
fn measure_control_rtt(seed: u64) -> f64 {
    let mut engine = Engine::new(0xE7 ^ seed);
    let sink = engine.add_component("waiter", Waiter { resolved: vec![] });
    struct Nop;
    impl Component for Nop {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
    }
    let sw = engine.add_component("nop-switch", Nop);
    let flow = FlowId {
        src: fcc_proto::addr::NodeId(1),
        dst: fcc_proto::addr::NodeId(9),
    };
    let mut arb = FabricArbiter::new(SimTime::from_ns(100.0));
    arb.register_path(flow, vec![(sw, 0)]);
    arb.set_capacity((sw, 0), 100.0);
    let arb = engine.add_component("arbiter", arb);
    let client = engine.add_component("client", ArbiterClient::new(arb, SimTime::from_ns(100.0)));
    for i in 0..16 {
        engine.post(
            client,
            SimTime::from_us(i as f64),
            ClientRequest {
                op: ArbiterOp::Query { flow },
                future_id: i,
                reply_to: sink,
            },
        );
    }
    engine.run_until_idle();
    engine
        .component::<ArbiterClient>(client)
        .rtt
        .summary_ns()
        .mean
}

/// The E3c contention scenario with `Arbitrated` switch policy and
/// reservations installed for every flow.
fn contended_with_reservations(quick: bool, seed: u64) -> (f64, f64, f64) {
    let horizon = if quick {
        SimTime::from_us(150.0)
    } else {
        SimTime::from_us(600.0)
    };
    let mut engine = Engine::new(0xE7C ^ seed);
    let spec = TopologySpec {
        switch: SwitchConfig {
            phys: PhysConfig::omega_like(),
            fwd_latency: SimTime::from_ns(90.0),
            queueing: QueueDiscipline::Voq,
            allocation: AllocPolicy::Arbitrated,
            ..SwitchConfig::fabrex_like()
        },
        fha_outstanding: 64,
        ..TopologySpec::default()
    };
    let topo = topology::single_switch(
        &mut engine,
        spec,
        3,
        vec![Box::new(fcc_fabric::endpoint::PipelinedMemory::new(
            SimTime::from_ns(200.0),
            SimTime::from_ns(220.0),
            SimTime::from_ns(40.0),
            1 << 30,
        ))],
    );
    // The arbiter knows the switch's device-facing egress port (port
    // index 3: after 3 host ports) and its capacity; each flow reserves a
    // fair share of the device's ~25 Mops ≈ 12.8 Gbit/s of 64 B payload.
    let dev_port = 3usize;
    let sw = topo.switches[0];
    let mut arb = FabricArbiter::new(SimTime::from_ns(100.0));
    arb.set_capacity((sw, dev_port), 50.0);
    let dev_node = topo.devices[0].node;
    let flows: Vec<FlowId> = topo
        .hosts
        .iter()
        .map(|h| FlowId {
            src: h.node,
            dst: dev_node,
        })
        .collect();
    for &flow in &flows {
        arb.register_path(flow, vec![(sw, dev_port)]);
    }
    let arb = engine.add_component("arbiter", arb);
    let client = engine.add_component("client", ArbiterClient::new(arb, SimTime::from_ns(100.0)));
    let waiter = engine.add_component("waiter", Waiter { resolved: vec![] });
    // Equal 15 Gbit/s reservations for all three flows, installed up front.
    for (i, &flow) in flows.iter().enumerate() {
        engine.post(
            client,
            SimTime::ZERO,
            ClientRequest {
                op: ArbiterOp::Reserve {
                    flow,
                    gbps: 15.0,
                    burst_bytes: 16 * 1024,
                },
                future_id: i as u64,
                reply_to: waiter,
            },
        );
    }
    engine.run_until(SimTime::from_us(2.0));
    // Same load shape as E3c: hog from t=0, bursty from 50 µs.
    let hog = engine.add_component(
        "hog",
        LoadGen::new(LoadCfg {
            fha: topo.hosts[0].fha,
            base: FAM_BASE,
            len: 1 << 20,
            op_bytes: 64,
            write: true,
            window: 16,
            count: None,
            stop_at: horizon,
            pattern: AddrPattern::Sequential,
        }),
    );
    engine.post(hog, SimTime::from_us(2.0), StartLoad);
    let bursty: Vec<_> = (1..3)
        .map(|h| {
            let lg = engine.add_component(
                format!("bursty{h}"),
                LoadGen::new(LoadCfg {
                    fha: topo.hosts[h].fha,
                    base: FAM_BASE + (h as u64) * (1 << 20),
                    len: 1 << 20,
                    op_bytes: 64,
                    write: true,
                    window: 4,
                    count: None,
                    stop_at: horizon,
                    pattern: AddrPattern::Sequential,
                }),
            );
            engine.post(lg, SimTime::from_us(50.0), StartLoad);
            lg
        })
        .collect();
    engine.run_until_idle();
    let hog_tput = engine.component::<LoadGen>(hog).completed() as f64 / horizon.as_us();
    let burst_window = horizon.as_us() - 50.0;
    let bursty_tputs: Vec<f64> = bursty
        .iter()
        .map(|&lg| engine.component::<LoadGen>(lg).completed() as f64 / burst_window)
        .collect();
    let bursty_mean = bursty_tputs.iter().sum::<f64>() / bursty_tputs.len() as f64;
    let jain = jain_fairness(&[hog_tput, bursty_tputs[0], bursty_tputs[1]]);
    (hog_tput, bursty_mean, jain)
}

/// Runs E7.
pub fn run(quick: bool) -> E7Result {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> E7Result {
    let control_rtt_ns = measure_control_rtt(seed);
    // Uncoordinated baseline: reuse E3c's ramp-up outcome.
    let e3c = exp_e3::run_c_seeded(quick, seed);
    let ramp = e3c.get("exp ramp-up");
    let jain_before = jain_fairness(&[ramp.hog_tput, ramp.bursty_tput, ramp.bursty_tput]);
    let (hog, bursty, jain_after) = contended_with_reservations(quick, seed);
    E7Result {
        control_rtt_ns,
        uncoordinated: (ramp.hog_tput, ramp.bursty_tput),
        arbitrated: (hog, bursty),
        jain_before,
        jain_after,
    }
}

impl fmt::Display for E7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E7 — central arbiter via dedicated control lanes")?;
        writeln!(
            f,
            "  unloaded control-lane query RTT: {:.0} ns (paper: \"up to 200ns\")",
            self.control_rtt_ns
        )?;
        let rows = vec![
            vec![
                "uncoordinated (ramp-up)".to_string(),
                format!("{:.2}", self.uncoordinated.0),
                format!("{:.2}", self.uncoordinated.1),
                format!("{:.2}", self.jain_before),
            ],
            vec![
                "arbiter reservations".to_string(),
                format!("{:.2}", self.arbitrated.0),
                format!("{:.2}", self.arbitrated.1),
                format!("{:.2}", self.jain_after),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(
                &["coordination", "hog ops/us", "bursty ops/us", "Jain"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_lane_rtt_matches_paper_claim() {
        let rtt = measure_control_rtt(0);
        assert!((rtt - 200.0).abs() < 1.0, "RTT {rtt}");
    }

    #[test]
    fn reservations_restore_fairness() {
        let r = run(true);
        assert!(
            r.jain_after > r.jain_before + 0.1,
            "Jain {} → {}",
            r.jain_before,
            r.jain_after
        );
        assert!(
            r.arbitrated.1 > r.uncoordinated.1 * 1.3,
            "bursty throughput recovers: {} → {}",
            r.uncoordinated.1,
            r.arbitrated.1
        );
    }
}
