//! E3 — the routable-PCIe experiments of §3 Difference #3.
//!
//! Five sub-experiments reproduce the paper's in-text measurements and the
//! three credit-based-flow-control pathologies it identifies:
//!
//! * [`run_a`] — concurrency adds ≈600 ns to disaggregated 64 B writes
//!   vs. holding the device in-host.
//! * [`run_b`] — 64 B write latency degrades drastically when interleaved
//!   with 16 KiB writes.
//! * [`run_c`] — exponential ramp-up credit **allocation** lets a hot
//!   port starve bursty contenders.
//! * [`run_d`] — credit-agnostic **scheduling** (FIFO) causes
//!   head-of-line blocking behind a credit-starved output.
//! * [`run_e`] — credit starvation **back-propagates** across switches,
//!   harming victim flows that never touch the congested device.
//!
//! These use a *FabreX-like* calibration (short intra-rack cables, fast
//! PCIe switch) rather than the Omega FAM calibration, matching the
//! paper's GigaIO testbed for these claims.

use std::fmt;

use fcc_fabric::credit::AllocPolicy;
use fcc_fabric::endpoint::{Endpoint, PipelinedMemory};
use fcc_fabric::switch::{QueueDiscipline, SwitchConfig};
use fcc_fabric::topology::{self, StageSpec, Topology, TopologySpec, FAM_BASE};
use fcc_proto::phys::PhysConfig;
use fcc_sim::{Engine, SimTime, SummaryNs};

use crate::capture::Capture;
use crate::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};

/// FabreX-like link: short cable, fast SerDes.
pub(crate) fn fabrex_phys() -> PhysConfig {
    PhysConfig::omega_like() // 25 ns propagation, 512 Gbit/s.
}

/// A FabreX-attached FPGA-card-like endpoint: per-byte controller
/// occupancy makes 16 KiB writes hold the device ~256x longer than 64 B
/// ones, as on the shared U55C card.
pub(crate) fn fabrex_device() -> Box<dyn Endpoint> {
    Box::new(
        PipelinedMemory::new(
            SimTime::from_ns(200.0),
            SimTime::from_ns(220.0),
            SimTime::from_ns(40.0),
            1 << 30,
        )
        .with_gap_per_byte(0.06),
    )
}

pub(crate) fn fabrex_spec(queueing: QueueDiscipline, allocation: AllocPolicy) -> TopologySpec {
    TopologySpec {
        switch: SwitchConfig {
            phys: fabrex_phys(),
            fwd_latency: SimTime::from_ns(90.0),
            queueing,
            allocation,
            ..SwitchConfig::fabrex_like()
        },
        fha_outstanding: 64,
        ..TopologySpec::default()
    }
}

fn default_spec() -> TopologySpec {
    fabrex_spec(QueueDiscipline::Voq, AllocPolicy::Fair)
}

/// Attaches a load generator to a host and starts it at `start`.
fn attach_load(
    engine: &mut Engine,
    topo: &Topology,
    host: usize,
    cfg_fn: impl FnOnce(fcc_sim::ComponentId) -> LoadCfg,
    start: SimTime,
) -> fcc_sim::ComponentId {
    let cfg = cfg_fn(topo.hosts[host].fha);
    let lg = engine.add_component(format!("load-h{host}"), LoadGen::new(cfg));
    engine.post(lg, start, StartLoad);
    lg
}

// ---------------------------------------------------------------- E3a --

/// E3a outcome.
pub struct E3aResult {
    /// In-host (direct attach) mean 64 B write RTT (ns).
    pub inhost_ns: f64,
    /// Disaggregated mean RTT by concurrency level: `(writers, ns)`.
    pub disaggregated: Vec<(usize, f64)>,
}

impl E3aResult {
    /// RTT increase over in-host at a concurrency level.
    pub fn delta_at(&self, writers: usize) -> f64 {
        self.disaggregated
            .iter()
            .find(|&&(w, _)| w == writers)
            .map(|&(_, ns)| ns - self.inhost_ns)
            .unwrap_or(f64::NAN)
    }
}

/// The E3a device: a scarcer controller (one access per 150 ns) so that
/// concurrent writers actually queue, as on the shared U55C card.
fn e3a_device() -> Box<dyn Endpoint> {
    Box::new(PipelinedMemory::new(
        SimTime::from_ns(200.0),
        SimTime::from_ns(220.0),
        SimTime::from_ns(150.0),
        1 << 30,
    ))
}

/// Runs E3a.
pub fn run_a(quick: bool) -> E3aResult {
    run_a_captured(quick, &mut Capture::disabled())
}

/// Runs E3a, feeding telemetry into `cap`. Scenario (process) labels:
/// `e3a-inhost`, `e3a-w{N}`.
pub fn run_a_captured(quick: bool, cap: &mut Capture) -> E3aResult {
    run_a_captured_seeded(quick, cap, 0)
}

/// [`run_a_captured`] with a caller-supplied RNG seed salt.
pub fn run_a_captured_seeded(quick: bool, cap: &mut Capture, seed: u64) -> E3aResult {
    let count = if quick { 300 } else { 2000 };
    // In-host: direct attach, single writer.
    let inhost_ns = {
        let mut engine = Engine::new(0xE3A ^ seed);
        let topo = topology::direct(&mut engine, default_spec(), e3a_device());
        cap.begin_scenario("e3a-inhost", &mut engine, &topo);
        let lg = attach_load(
            &mut engine,
            &topo,
            0,
            |fha| LoadCfg {
                fha,
                base: FAM_BASE,
                len: 1 << 20,
                op_bytes: 64,
                write: true,
                window: 1,
                count: Some(count),
                stop_at: SimTime::MAX,
                pattern: AddrPattern::Sequential,
            },
            SimTime::ZERO,
        );
        engine.run_until_idle();
        cap.end_scenario("e3a-inhost", &engine, &topo);
        engine.component::<LoadGen>(lg).latency.summary_ns().mean
    };
    // Disaggregated: one switch, N concurrent writers to the same chassis.
    let mut disaggregated = Vec::new();
    for &writers in &[1usize, 2, 4, 8] {
        let mut engine = Engine::new((0xE3A ^ seed) + writers as u64);
        let topo =
            topology::single_switch(&mut engine, default_spec(), writers, vec![e3a_device()]);
        let label = format!("e3a-w{writers}");
        cap.begin_scenario(&label, &mut engine, &topo);
        let lgs: Vec<_> = (0..writers)
            .map(|h| {
                attach_load(
                    &mut engine,
                    &topo,
                    h,
                    |fha| LoadCfg {
                        fha,
                        base: FAM_BASE + (h as u64) * (1 << 20),
                        len: 1 << 20,
                        op_bytes: 64,
                        write: true,
                        window: 1,
                        count: Some(count),
                        stop_at: SimTime::MAX,
                        pattern: AddrPattern::Sequential,
                    },
                    SimTime::ZERO,
                )
            })
            .collect();
        engine.run_until_idle();
        cap.end_scenario(&label, &engine, &topo);
        let mean = lgs
            .iter()
            .map(|&lg| engine.component::<LoadGen>(lg).latency.summary_ns().mean)
            .sum::<f64>()
            / writers as f64;
        disaggregated.push((writers, mean));
    }
    E3aResult {
        inhost_ns,
        disaggregated,
    }
}

impl fmt::Display for E3aResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3a — concurrent 64 B writes to a disaggregated device")?;
        writeln!(f, "  in-host (direct) RTT: {:.0} ns", self.inhost_ns)?;
        let rows: Vec<Vec<String>> = self
            .disaggregated
            .iter()
            .map(|&(w, ns)| {
                vec![
                    w.to_string(),
                    format!("{ns:.0}"),
                    format!("+{:.0}", ns - self.inhost_ns),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(&["writers", "RTT (ns)", "delta vs in-host"], &rows)
        )?;
        writeln!(
            f,
            "paper: \"concurrent 64B PCIe writes can add 600ns more one-way latencies\""
        )
    }
}

// ---------------------------------------------------------------- E3b --

/// E3b outcome.
pub struct E3bResult {
    /// 64 B write latency with no interference.
    pub alone: SummaryNs,
    /// 64 B write latency sharing the fabric with 16 KiB writers.
    pub interfered: SummaryNs,
}

impl E3bResult {
    /// p99 inflation factor.
    pub fn p99_inflation(&self) -> f64 {
        self.interfered.p99 / self.alone.p99
    }

    /// Mean inflation factor.
    pub fn mean_inflation(&self) -> f64 {
        self.interfered.mean / self.alone.mean
    }
}

/// Runs E3b.
pub fn run_b(quick: bool) -> E3bResult {
    run_b_captured(quick, &mut Capture::disabled())
}

/// Runs E3b, feeding telemetry into `cap`. Scenario labels: `e3b-alone`,
/// `e3b-bulk` — comparing the two process groups' `credit` spans shows
/// the 16 KiB writers camping on link credits.
pub fn run_b_captured(quick: bool, cap: &mut Capture) -> E3bResult {
    run_b_captured_seeded(quick, cap, 0)
}

/// [`run_b_captured`] with a caller-supplied RNG seed salt.
pub fn run_b_captured_seeded(quick: bool, cap: &mut Capture, seed: u64) -> E3bResult {
    let count = if quick { 400 } else { 3000 };
    let mut run = |with_bulk: bool| -> SummaryNs {
        let mut engine = Engine::new((0xE3B ^ seed) + with_bulk as u64);
        let topo = topology::single_switch(&mut engine, default_spec(), 5, vec![fabrex_device()]);
        let label = if with_bulk { "e3b-bulk" } else { "e3b-alone" };
        cap.begin_scenario(label, &mut engine, &topo);
        let small = attach_load(
            &mut engine,
            &topo,
            0,
            |fha| LoadCfg {
                fha,
                base: FAM_BASE,
                len: 1 << 20,
                op_bytes: 64,
                write: true,
                window: 2,
                count: Some(count),
                stop_at: SimTime::MAX,
                pattern: AddrPattern::Sequential,
            },
            SimTime::ZERO,
        );
        if with_bulk {
            for h in 1..5 {
                attach_load(
                    &mut engine,
                    &topo,
                    h,
                    |fha| LoadCfg {
                        fha,
                        base: FAM_BASE + (h as u64) * (64 << 20),
                        len: 32 << 20,
                        op_bytes: 16384,
                        write: true,
                        window: 2,
                        count: None,
                        stop_at: SimTime::from_ms(2.0),
                        pattern: AddrPattern::Sequential,
                    },
                    SimTime::ZERO,
                );
            }
        }
        engine.run_until_idle();
        cap.end_scenario(label, &engine, &topo);
        engine.component::<LoadGen>(small).latency.summary_ns()
    };
    E3bResult {
        alone: run(false),
        interfered: run(true),
    }
}

impl fmt::Display for E3bResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3b — 64 B writes interleaved with 16 KiB writes")?;
        let rows = vec![
            vec![
                "alone".to_string(),
                format!("{:.0}", self.alone.mean),
                format!("{:.0}", self.alone.p50),
                format!("{:.0}", self.alone.p99),
            ],
            vec![
                "with 16KiB bulk".to_string(),
                format!("{:.0}", self.interfered.mean),
                format!("{:.0}", self.interfered.p50),
                format!("{:.0}", self.interfered.p99),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["scenario", "mean (ns)", "p50", "p99"], &rows)
        )?;
        writeln!(
            f,
            "mean inflation {:.1}x, p99 inflation {:.1}x (paper: \"degraded drastically\")",
            self.mean_inflation(),
            self.p99_inflation()
        )
    }
}

// ---------------------------------------------------------------- E3c --

/// Per-policy outcome of the allocation experiment.
#[derive(Debug, Clone)]
pub struct AllocOutcome {
    /// Policy label.
    pub policy: &'static str,
    /// Hog throughput (ops/µs).
    pub hog_tput: f64,
    /// Mean bursty-host throughput during its burst (ops/µs).
    pub bursty_tput: f64,
    /// Bursty p99 latency (ns).
    pub bursty_p99: f64,
}

/// E3c outcome.
pub struct E3cResult {
    /// Fair vs ramp-up outcomes.
    pub outcomes: Vec<AllocOutcome>,
}

fn run_alloc_policy(
    policy: AllocPolicy,
    label: &'static str,
    scenario: &str,
    quick: bool,
    cap: &mut Capture,
    seed: u64,
) -> AllocOutcome {
    let horizon = if quick {
        SimTime::from_us(150.0)
    } else {
        SimTime::from_us(600.0)
    };
    let mut engine = Engine::new(0xE3C ^ seed);
    let topo = topology::single_switch(
        &mut engine,
        fabrex_spec(QueueDiscipline::Voq, policy),
        3,
        vec![fabrex_device()],
    );
    cap.begin_scenario(scenario, &mut engine, &topo);
    // Hog: saturates from t=0 so ramp-up grants it a huge allocation.
    let hog = attach_load(
        &mut engine,
        &topo,
        0,
        |fha| LoadCfg {
            fha,
            base: FAM_BASE,
            len: 1 << 20,
            op_bytes: 64,
            write: true,
            window: 16,
            count: None,
            stop_at: horizon,
            pattern: AddrPattern::Sequential,
        },
        SimTime::ZERO,
    );
    // Bursty contenders: idle for 50 µs, then demand service.
    let burst_start = SimTime::from_us(50.0);
    let bursty: Vec<_> = (1..3)
        .map(|h| {
            attach_load(
                &mut engine,
                &topo,
                h,
                |fha| LoadCfg {
                    fha,
                    base: FAM_BASE + (h as u64) * (1 << 20),
                    len: 1 << 20,
                    op_bytes: 64,
                    write: true,
                    window: 4,
                    count: None,
                    stop_at: horizon,
                    pattern: AddrPattern::Sequential,
                },
                burst_start,
            )
        })
        .collect();
    engine.run_until_idle();
    cap.end_scenario(scenario, &engine, &topo);
    let hog_g = engine.component::<LoadGen>(hog);
    let hog_tput = hog_g.completed() as f64 / horizon.as_us();
    let burst_window = (horizon - burst_start).as_us();
    let bursty_tput = bursty
        .iter()
        .map(|&lg| engine.component::<LoadGen>(lg).completed() as f64 / burst_window)
        .sum::<f64>()
        / bursty.len() as f64;
    let bursty_p99 = bursty
        .iter()
        .map(|&lg| engine.component::<LoadGen>(lg).latency.summary_ns().p99)
        .fold(0.0f64, f64::max);
    AllocOutcome {
        policy: label,
        hog_tput,
        bursty_tput,
        bursty_p99,
    }
}

/// Runs E3c.
pub fn run_c(quick: bool) -> E3cResult {
    run_c_captured(quick, &mut Capture::disabled())
}

/// [`run_c`] with a caller-supplied RNG seed salt.
pub fn run_c_seeded(quick: bool, seed: u64) -> E3cResult {
    run_c_captured_seeded(quick, &mut Capture::disabled(), seed)
}

/// Runs E3c, feeding telemetry into `cap`. Scenario labels: `e3c-fair`,
/// `e3c-rampup` — the ramp-up process shows `arb` (`switch.arb_wait`)
/// spans piling up on the bursty hosts' ports.
pub fn run_c_captured(quick: bool, cap: &mut Capture) -> E3cResult {
    run_c_captured_seeded(quick, cap, 0)
}

/// [`run_c_captured`] with a caller-supplied RNG seed salt.
pub fn run_c_captured_seeded(quick: bool, cap: &mut Capture, seed: u64) -> E3cResult {
    E3cResult {
        outcomes: vec![
            run_alloc_policy(
                AllocPolicy::Fair,
                "static-fair",
                "e3c-fair",
                quick,
                cap,
                seed,
            ),
            run_alloc_policy(
                AllocPolicy::default_ramp_up(),
                "exp ramp-up",
                "e3c-rampup",
                quick,
                cap,
                seed,
            ),
        ],
    }
}

impl E3cResult {
    /// The named outcome.
    pub fn get(&self, policy: &str) -> &AllocOutcome {
        self.outcomes
            .iter()
            .find(|o| o.policy == policy)
            .expect("policy present")
    }
}

impl fmt::Display for E3cResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3c — credit allocation: hot port vs bursty contenders")?;
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.policy.to_string(),
                    format!("{:.2}", o.hog_tput),
                    format!("{:.2}", o.bursty_tput),
                    format!("{:.0}", o.bursty_p99),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(
                &[
                    "allocation",
                    "hog ops/us",
                    "bursty ops/us",
                    "bursty p99 (ns)"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "paper: \"a consistently heavily-used port would take more credits, \
             leaving little room for other contending ports\""
        )
    }
}

// ---------------------------------------------------------------- E3d --

/// E3d outcome.
pub struct E3dResult {
    /// Fast-flow throughput under FIFO (HOL-prone) queueing (ops/µs).
    pub fifo_fast_tput: f64,
    /// Fast-flow throughput with VOQs (ops/µs).
    pub voq_fast_tput: f64,
    /// Slow-flow throughput under FIFO (the device bound), for reference.
    pub fifo_slow_tput: f64,
}

impl E3dResult {
    /// How much VOQs recover.
    pub fn hol_factor(&self) -> f64 {
        self.voq_fast_tput / self.fifo_fast_tput.max(1e-9)
    }
}

/// Runs E3d: one host drives a slow and a fast device through the same
/// switch input port; the head flit to the credit-starved slow output
/// blocks flits to the idle fast output iff the queueing is FIFO.
pub fn run_d(quick: bool) -> E3dResult {
    run_d_captured(quick, &mut Capture::disabled())
}

/// Runs E3d, feeding telemetry into `cap`. Scenario labels: `e3d-fifo`,
/// `e3d-voq`.
pub fn run_d_captured(quick: bool, cap: &mut Capture) -> E3dResult {
    run_d_captured_seeded(quick, cap, 0)
}

/// [`run_d_captured`] with a caller-supplied RNG seed salt.
pub fn run_d_captured_seeded(quick: bool, cap: &mut Capture, seed: u64) -> E3dResult {
    let horizon = if quick {
        SimTime::from_us(200.0)
    } else {
        SimTime::from_us(800.0)
    };
    let mut run = |queueing: QueueDiscipline| -> (f64, f64) {
        let mut engine = Engine::new(0xE3D ^ seed);
        let slow: Box<dyn Endpoint> = Box::new(PipelinedMemory::new(
            SimTime::from_ns(4000.0),
            SimTime::from_ns(4000.0),
            SimTime::from_ns(4000.0),
            1 << 30,
        ));
        let fast = fabrex_device();
        let mut spec = fabrex_spec(queueing, AllocPolicy::Fair);
        spec.fha_outstanding = 64;
        let engine_topo = topology::single_switch(&mut engine, spec, 1, vec![slow, fast]);
        let label = match queueing {
            QueueDiscipline::Fifo => "e3d-fifo",
            QueueDiscipline::Voq => "e3d-voq",
            QueueDiscipline::Wormhole => "e3d-wormhole",
        };
        cap.begin_scenario(label, &mut engine, &engine_topo);
        // Shrink the slow FEA's admission queue so backpressure forms fast.
        let slow_fea = engine_topo.devices[0].fea;
        engine
            .component_mut::<fcc_fabric::adapter::Fea>(slow_fea)
            .set_queue_depth(2);
        let slow_range = engine_topo.devices[0].range;
        let fast_range = engine_topo.devices[1].range;
        let to_slow = attach_load(
            &mut engine,
            &engine_topo,
            0,
            |fha| LoadCfg {
                fha,
                base: slow_range.base,
                len: 1 << 20,
                op_bytes: 64,
                write: true,
                // Deep enough to exhaust the FEA's 16 request credits and
                // camp in the switch, where HOL blocking can act.
                window: 32,
                count: None,
                stop_at: horizon,
                pattern: AddrPattern::Sequential,
            },
            SimTime::ZERO,
        );
        let to_fast = attach_load(
            &mut engine,
            &engine_topo,
            0,
            |fha| LoadCfg {
                fha,
                base: fast_range.base,
                len: 1 << 20,
                op_bytes: 64,
                write: true,
                window: 8,
                count: None,
                stop_at: horizon,
                pattern: AddrPattern::Sequential,
            },
            SimTime::ZERO,
        );
        engine.run_until_idle();
        cap.end_scenario(label, &engine, &engine_topo);
        let fast_tput = engine.component::<LoadGen>(to_fast).completed() as f64 / horizon.as_us();
        let slow_tput = engine.component::<LoadGen>(to_slow).completed() as f64 / horizon.as_us();
        (fast_tput, slow_tput)
    };
    let (fifo_fast, fifo_slow) = run(QueueDiscipline::Fifo);
    let (voq_fast, _) = run(QueueDiscipline::Voq);
    E3dResult {
        fifo_fast_tput: fifo_fast,
        voq_fast_tput: voq_fast,
        fifo_slow_tput: fifo_slow,
    }
}

impl fmt::Display for E3dResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3d — credit-agnostic scheduling: head-of-line blocking")?;
        let rows = vec![
            vec![
                "FIFO (credit-agnostic)".to_string(),
                format!("{:.2}", self.fifo_fast_tput),
                format!("{:.2}", self.fifo_slow_tput),
            ],
            vec![
                "VOQ".to_string(),
                format!("{:.2}", self.voq_fast_tput),
                "-".to_string(),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["queueing", "fast-flow ops/us", "slow-flow ops/us"], &rows)
        )?;
        writeln!(
            f,
            "VOQ recovers {:.1}x fast-flow throughput (paper: \"head-of-line \
             blocking and credit waste\")",
            self.hol_factor()
        )
    }
}

// ---------------------------------------------------------------- E3e --

/// E3e outcome.
pub struct E3eResult {
    /// Victim throughput with the leaf congested (ops/µs).
    pub victim_congested: f64,
    /// Victim throughput without the hog (ops/µs).
    pub victim_alone: f64,
    /// Hog throughput (bounded by the slow device) (ops/µs).
    pub hog_tput: f64,
}

impl E3eResult {
    /// Victim degradation factor.
    pub fn degradation(&self) -> f64 {
        self.victim_alone / self.victim_congested.max(1e-9)
    }
}

/// Runs E3e: a 3-switch chain; the hog congests a slow device at the far
/// end, the victim targets an idle device one hop away — and still starves
/// because the shared inter-switch link's ingress credits are camped by
/// the hog's backlog.
pub fn run_e(quick: bool) -> E3eResult {
    run_e_captured(quick, &mut Capture::disabled())
}

/// Runs E3e, feeding telemetry into `cap`. Scenario labels: `e3e-hog`,
/// `e3e-alone` — the hog process's `credit` spans on the inter-switch
/// ports show starvation back-propagating to the victim.
pub fn run_e_captured(quick: bool, cap: &mut Capture) -> E3eResult {
    run_e_captured_seeded(quick, cap, 0)
}

/// [`run_e_captured`] with a caller-supplied RNG seed salt.
pub fn run_e_captured_seeded(quick: bool, cap: &mut Capture, seed: u64) -> E3eResult {
    let horizon = if quick {
        SimTime::from_us(200.0)
    } else {
        SimTime::from_us(800.0)
    };
    let mut run = |with_hog: bool| -> (f64, f64) {
        let mut engine = Engine::new(0xE3E ^ seed);
        let slow: Box<dyn Endpoint> = Box::new(PipelinedMemory::new(
            SimTime::from_ns(5000.0),
            SimTime::from_ns(5000.0),
            SimTime::from_ns(5000.0),
            1 << 30,
        ));
        let mut spec_chain = fabrex_spec(QueueDiscipline::Fifo, AllocPolicy::Fair);
        spec_chain.fha_outstanding = 128;
        let topo = topology::chain(
            &mut engine,
            spec_chain,
            vec![
                StageSpec {
                    n_hosts: 2,
                    devices: vec![],
                },
                StageSpec {
                    n_hosts: 0,
                    devices: vec![fabrex_device()],
                },
                StageSpec {
                    n_hosts: 0,
                    devices: vec![slow],
                },
            ],
        );
        let label = if with_hog { "e3e-hog" } else { "e3e-alone" };
        cap.begin_scenario(label, &mut engine, &topo);
        // Shrink the slow device's admission queue so its backlog camps
        // in the switches, not the device.
        engine
            .component_mut::<fcc_fabric::adapter::Fea>(topo.devices[1].fea)
            .set_queue_depth(2);
        let victim_range = topo.devices[0].range;
        let slow_range = topo.devices[1].range;
        let victim = attach_load(
            &mut engine,
            &topo,
            1,
            |fha| LoadCfg {
                fha,
                base: victim_range.base,
                len: 1 << 20,
                op_bytes: 64,
                write: true,
                window: 4,
                count: None,
                stop_at: horizon,
                pattern: AddrPattern::Sequential,
            },
            SimTime::ZERO,
        );
        let mut hog_tput = 0.0;
        if with_hog {
            let hog = attach_load(
                &mut engine,
                &topo,
                0,
                |fha| LoadCfg {
                    fha,
                    base: slow_range.base,
                    len: 1 << 20,
                    op_bytes: 64,
                    write: true,
                    // Deep enough to fill the FEA queue, the leaf switch,
                    // and camp on the shared inter-switch link credits.
                    window: 64,
                    count: None,
                    stop_at: horizon,
                    pattern: AddrPattern::Sequential,
                },
                SimTime::ZERO,
            );
            engine.run_until_idle();
            cap.end_scenario(label, &engine, &topo);
            hog_tput = engine.component::<LoadGen>(hog).completed() as f64 / horizon.as_us();
            let victim_tput =
                engine.component::<LoadGen>(victim).completed() as f64 / horizon.as_us();
            return (victim_tput, hog_tput);
        }
        engine.run_until_idle();
        cap.end_scenario(label, &engine, &topo);
        let victim_tput = engine.component::<LoadGen>(victim).completed() as f64 / horizon.as_us();
        (victim_tput, hog_tput)
    };
    let (victim_congested, hog_tput) = run(true);
    let (victim_alone, _) = run(false);
    E3eResult {
        victim_congested,
        victim_alone,
        hog_tput,
    }
}

impl fmt::Display for E3eResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3e — credit starvation back-propagates across switches")?;
        let rows = vec![
            vec![
                "victim alone".to_string(),
                format!("{:.2}", self.victim_alone),
            ],
            vec![
                "victim + hog to slow leaf".to_string(),
                format!("{:.2}", self.victim_congested),
            ],
            vec![
                "hog (device-bound)".to_string(),
                format!("{:.2}", self.hog_tput),
            ],
        ];
        write!(f, "{}", crate::fmt_table(&["flow", "ops/us"], &rows))?;
        writeln!(
            f,
            "victim degraded {:.1}x despite targeting an idle device one hop \
             away (paper: \"congestion can spread across a large victim area\")",
            self.degradation()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3a_concurrency_adds_hundreds_of_ns() {
        let r = run_a(true);
        // Disaggregation alone costs something; concurrency adds more.
        let d1 = r.delta_at(1);
        let d8 = r.delta_at(8);
        assert!(d1 > 100.0, "switch hop must cost: {d1}");
        assert!(d8 > d1, "concurrency adds latency: {d1} → {d8}");
        assert!(
            d8 > 400.0 && d8 < 2000.0,
            "paper's ~600ns-scale delta, got {d8}"
        );
    }

    #[test]
    fn e3b_bulk_interleaving_inflates_tails() {
        let r = run_b(true);
        assert!(
            r.p99_inflation() > 2.0,
            "p99 {} → {}",
            r.alone.p99,
            r.interfered.p99
        );
        assert!(
            r.mean_inflation() > 1.3,
            "mean inflation {}",
            r.mean_inflation()
        );
    }

    #[test]
    fn e3c_ramp_up_starves_bursty_flows() {
        let r = run_c(true);
        let fair = r.get("static-fair");
        let ramp = r.get("exp ramp-up");
        assert!(
            fair.bursty_tput > ramp.bursty_tput * 1.3,
            "fair {} vs ramp {}",
            fair.bursty_tput,
            ramp.bursty_tput
        );
        assert!(
            ramp.hog_tput > ramp.bursty_tput * 3.0,
            "under ramp-up the hog dominates: hog {} vs bursty {}",
            ramp.hog_tput,
            ramp.bursty_tput
        );
    }

    #[test]
    fn e3d_fifo_hol_blocks_the_fast_flow() {
        let r = run_d(true);
        assert!(
            r.hol_factor() > 2.0,
            "VOQ should recover >2x: fifo={} voq={}",
            r.fifo_fast_tput,
            r.voq_fast_tput
        );
    }

    #[test]
    fn e3e_congestion_spreads_to_the_victim() {
        let r = run_e(true);
        assert!(
            r.degradation() > 2.0,
            "victim degradation {}: alone {} vs congested {}",
            r.degradation(),
            r.victim_alone,
            r.victim_congested
        );
    }
}
