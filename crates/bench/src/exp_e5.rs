//! E5 — design principle #2: the node-type-conscious unified heap.
//!
//! A Zipf-skewed object workload runs over a heap spanning host-local
//! memory and three fabric-attached node types. Placements compared:
//!
//! * **all-remote**: everything on the CPU-less expander (the naive
//!   "memory expansion" deployment);
//! * **static-spread**: objects striped across nodes with no profiling;
//! * **unified heap**: temperature-driven migration (the paper's DP#2),
//!   rebalanced periodically.

use std::fmt;

use fcc_core::heap::{FabricBox, HeapNodeCfg, PlacementHint, UnifiedHeap};
use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc_sim::SimTime;
use fcc_workloads::access::ZipfStream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One placement policy's outcome.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// Label.
    pub policy: &'static str,
    /// Mean access cost (ns).
    pub mean_ns: f64,
    /// Objects migrated.
    pub migrations: u64,
    /// Bytes migrated.
    pub bytes_migrated: u64,
}

/// E5 outcome.
pub struct E5Result {
    /// The compared placements.
    pub outcomes: Vec<PlacementOutcome>,
}

impl E5Result {
    /// The named outcome.
    pub fn get(&self, policy: &str) -> &PlacementOutcome {
        self.outcomes
            .iter()
            .find(|o| o.policy == policy)
            .expect("policy present")
    }

    /// Speedup of the unified heap over the all-remote baseline.
    pub fn speedup_vs_remote(&self) -> f64 {
        self.get("all-remote").mean_ns / self.get("unified heap").mean_ns
    }
}

const OBJ_SIZE: u64 = 4096;
const OBJECTS: usize = 512;

fn nodes(local_capacity: u64) -> Vec<HeapNodeCfg> {
    vec![
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::HostLocal, local_capacity),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 30),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CcNuma, 1 << 30),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::Coma, 1 << 28),
        },
    ]
}

fn run_policy(
    policy: &'static str,
    accesses: usize,
    rebalance_every: Option<usize>,
    rng: &mut StdRng,
) -> PlacementOutcome {
    // Local memory can only hold 1/8 of the objects: placement matters.
    let local_cap = (OBJECTS as u64 / 8) * OBJ_SIZE;
    let mut heap = UnifiedHeap::new(nodes(local_cap));
    let objs: Vec<FabricBox> = (0..OBJECTS)
        .map(|i| {
            let hint = match policy {
                "all-remote" => PlacementHint::Pinned(1),
                "static-spread" => PlacementHint::Pinned(1 + i % 3),
                _ => PlacementHint::Auto,
            };
            heap.alloc(OBJ_SIZE, hint).expect("capacity")
        })
        .collect();
    let mut zipf = ZipfStream::new(OBJECTS as u64, 1.1);
    let mut total = SimTime::ZERO;
    for i in 0..accesses {
        let rank = zipf.next(rng) as usize;
        let write = rng.gen_bool(0.3);
        total += heap.access(objs[rank], 0, write).expect("live");
        if let Some(every) = rebalance_every {
            if i > 0 && i % every == 0 {
                heap.rebalance();
            }
        }
    }
    PlacementOutcome {
        policy,
        mean_ns: total.as_ns() / accesses as f64,
        migrations: heap.migrations,
        bytes_migrated: heap.bytes_migrated,
    }
}

/// Runs E5.
pub fn run(quick: bool) -> E5Result {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> E5Result {
    let accesses = if quick { 20_000 } else { 200_000 };
    let mut rng = StdRng::seed_from_u64(0xE5 ^ seed);
    E5Result {
        outcomes: vec![
            run_policy("all-remote", accesses, None, &mut rng),
            run_policy("static-spread", accesses, None, &mut rng),
            run_policy("unified heap", accesses, Some(accesses / 20), &mut rng),
        ],
    }
}

impl fmt::Display for E5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E5 — unified heap: Zipf(1.1) over {OBJECTS} x 4 KiB objects, local tier fits 1/8"
        )?;
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.policy.to_string(),
                    format!("{:.0}", o.mean_ns),
                    o.migrations.to_string(),
                    format!("{}", o.bytes_migrated >> 10),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(
                &["placement", "mean access (ns)", "migrations", "KiB moved"],
                &rows
            )
        )?;
        writeln!(
            f,
            "unified heap speedup vs all-remote: {:.1}x",
            self.speedup_vs_remote()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_beats_static_placements_under_skew() {
        let r = run(true);
        let remote = r.get("all-remote").mean_ns;
        let spread = r.get("static-spread").mean_ns;
        let unified = r.get("unified heap").mean_ns;
        assert!(
            unified < spread && unified < remote,
            "unified {unified} vs spread {spread} vs remote {remote}"
        );
        assert!(r.speedup_vs_remote() > 2.0, "{}", r.speedup_vs_remote());
        assert!(r.get("unified heap").migrations > 0);
        assert_eq!(r.get("all-remote").migrations, 0);
    }
}
