//! E6 — design principle #3: idempotent tasks under passive failures.
//!
//! A fork-join DAG of bottom-half tasks runs over four executors in
//! separate power domains, under injected failures swept across MTBFs.
//! Recovery modes: idempotent re-execution (the paper's proposal) vs. a
//! checkpoint/restore baseline (Carbink-style persistent progress). A
//! task with a clobber anti-dependence is included to show the
//! compilation side: naive re-execution corrupts it; after
//! `make_idempotent` versioning it is safe.

use std::fmt;

use fcc_core::task::{
    make_idempotent, DagRuntime, Executor, Half, RecoveryMode, RunStats, TaskSpec,
};
use fcc_proto::addr::AddrRange;
use fcc_sim::SimTime;
use fcc_workloads::failure::FailureSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct MtbfPoint {
    /// Mean time between failures per domain (µs).
    pub mtbf_us: f64,
    /// Idempotent-mode stats.
    pub idempotent: RunStats,
    /// Checkpoint-mode stats.
    pub checkpoint: RunStats,
}

/// E6 outcome.
pub struct E6Result {
    /// Failure-free makespan (µs).
    pub baseline_us: f64,
    /// The MTBF sweep.
    pub points: Vec<MtbfPoint>,
    /// Whether the clobbering task corrupted under naive re-execution.
    pub naive_clobber_corrupts: bool,
    /// Whether versioning (make_idempotent) fixed it.
    pub versioned_is_safe: bool,
}

/// A fork-join DAG: `width` independent stages feeding a reducer, chained
/// `depth` times.
fn dag(width: u32, depth: u32, task_us: f64) -> Vec<TaskSpec> {
    let mut tasks = Vec::new();
    let mut id = 0u32;
    let mut prev_reducer: Option<u32> = None;
    for _ in 0..depth {
        let mut layer = Vec::new();
        for _ in 0..width {
            let deps = prev_reducer.map(|r| vec![r]).unwrap_or_default();
            tasks.push(TaskSpec::new(id, SimTime::from_us(task_us), deps));
            layer.push(id);
            id += 1;
        }
        tasks.push(TaskSpec::new(id, SimTime::from_us(task_us / 2.0), layer));
        prev_reducer = Some(id);
        id += 1;
    }
    tasks
}

fn executors(n: usize) -> Vec<Executor> {
    (0..n)
        .map(|d| Executor {
            domain: d,
            speed: 1.0,
            half: Half::Bottom,
        })
        .collect()
}

/// Runs E6.
pub fn run(quick: bool) -> E6Result {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> E6Result {
    let (width, depth) = if quick { (4, 4) } else { (8, 8) };
    let tasks = dag(width, depth, 50.0);
    let execs = executors(4);
    let no_failures = FailureSchedule::explicit(vec![]);
    let idem_rt = DagRuntime::new(execs.clone(), RecoveryMode::Idempotent);
    let ckpt_rt = DagRuntime::new(
        execs.clone(),
        RecoveryMode::Checkpoint {
            interval: SimTime::from_us(10.0),
            cost: SimTime::from_us(2.0),
        },
    );
    let baseline_us = idem_rt.run(&tasks, &no_failures).makespan.as_us();
    let horizon = SimTime::from_us(baseline_us * 40.0);
    let mut rng = StdRng::seed_from_u64(0xE6 ^ seed);
    let mut points = Vec::new();
    for &mtbf_us in &[200.0, 500.0, 2000.0] {
        let schedule = FailureSchedule::draw(
            4,
            SimTime::from_us(mtbf_us),
            SimTime::from_us(20.0),
            horizon,
            &mut rng,
        );
        points.push(MtbfPoint {
            mtbf_us,
            idempotent: idem_rt.run(&tasks, &schedule),
            checkpoint: ckpt_rt.run(&tasks, &schedule),
        });
    }
    // Correctness demonstration with a clobbering task.
    let mut clobber = TaskSpec::new(0, SimTime::from_us(50.0), vec![]);
    clobber.reads = vec![AddrRange::new(0, 4096)];
    clobber.writes = vec![AddrRange::new(0, 4096)];
    let one_failure = FailureSchedule::explicit(vec![fcc_workloads::failure::FailureEvent {
        at: SimTime::from_us(25.0),
        domain: 0,
        recovered_at: SimTime::from_us(30.0),
    }]);
    let single_exec = DagRuntime::new(executors(1), RecoveryMode::Idempotent);
    let naive = single_exec.run(std::slice::from_ref(&clobber), &one_failure);
    let versioned = make_idempotent(&clobber, 0x10_0000, 999);
    let fixed = single_exec.run(&versioned, &one_failure);
    E6Result {
        baseline_us,
        points,
        naive_clobber_corrupts: !naive.correct,
        versioned_is_safe: fixed.correct,
    }
}

impl fmt::Display for E6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E6 — idempotent tasks vs checkpointing under passive failures \
             (failure-free makespan {:.0} us)",
            self.baseline_us
        )?;
        let mut rows = Vec::new();
        for p in &self.points {
            rows.push(vec![
                format!("{:.0}", p.mtbf_us),
                "idempotent".to_string(),
                format!("{:.0}", p.idempotent.makespan.as_us()),
                format!("{:.0}", p.idempotent.wasted_work.as_us()),
                format!("{:.0}", p.idempotent.checkpoint_overhead.as_us()),
                p.idempotent.reexecutions.to_string(),
            ]);
            rows.push(vec![
                String::new(),
                "checkpoint".to_string(),
                format!("{:.0}", p.checkpoint.makespan.as_us()),
                format!("{:.0}", p.checkpoint.wasted_work.as_us()),
                format!("{:.0}", p.checkpoint.checkpoint_overhead.as_us()),
                p.checkpoint.reexecutions.to_string(),
            ]);
        }
        write!(
            f,
            "{}",
            crate::fmt_table(
                &[
                    "MTBF (us)",
                    "recovery",
                    "makespan (us)",
                    "wasted (us)",
                    "ckpt ovh (us)",
                    "restarts"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "naive re-execution of a clobbering task corrupts: {}; after \
             output versioning: safe = {}",
            self.naive_clobber_corrupts, self.versioned_is_safe
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_recovery_wins_at_moderate_failure_rates() {
        let r = run(true);
        assert!(r.naive_clobber_corrupts);
        assert!(r.versioned_is_safe);
        // At the rare-failure end, idempotent mode has no overhead and its
        // makespan beats checkpointing (which pays overhead always).
        let rare = r.points.last().expect("points");
        assert!(
            rare.idempotent.makespan < rare.checkpoint.makespan,
            "idempotent {} vs checkpoint {}",
            rare.idempotent.makespan,
            rare.checkpoint.makespan
        );
        assert_eq!(rare.idempotent.checkpoint_overhead, SimTime::ZERO);
        // At the frequent end, checkpointing wastes less work per failure.
        let frequent = &r.points[0];
        if frequent.idempotent.reexecutions > 0 && frequent.checkpoint.reexecutions > 0 {
            let idem_waste_per =
                frequent.idempotent.wasted_work.as_us() / frequent.idempotent.reexecutions as f64;
            let ckpt_waste_per =
                frequent.checkpoint.wasted_work.as_us() / frequent.checkpoint.reexecutions as f64;
            assert!(
                ckpt_waste_per <= idem_waste_per + 1e-9,
                "ckpt {ckpt_waste_per} vs idem {idem_waste_per}"
            );
        }
        // Failures always hurt.
        for p in &r.points {
            assert!(p.idempotent.makespan.as_us() >= r.baseline_us);
        }
    }
}
