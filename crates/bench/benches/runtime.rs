//! Criterion benchmarks of the UniFabric runtime data structures: the
//! unified heap and the idempotent-task scheduler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fcc_core::heap::{HeapNodeCfg, PlacementHint, UnifiedHeap};
use fcc_core::task::{DagRuntime, Executor, Half, RecoveryMode, TaskSpec};
use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc_sim::SimTime;
use fcc_workloads::access::ZipfStream;
use fcc_workloads::failure::FailureSchedule;

fn heap() -> UnifiedHeap {
    UnifiedHeap::new(vec![
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::HostLocal, 1 << 22),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 30),
        },
    ])
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("unified_heap");
    group.throughput(Throughput::Elements(1));
    group.bench_function("alloc_free", |b| {
        let mut h = heap();
        b.iter(|| {
            let obj = h.alloc(4096, PlacementHint::Auto).expect("fits");
            h.free(obj).expect("live");
        });
    });
    group.bench_function("access_profile", |b| {
        let mut h = heap();
        let obj = h.alloc(4096, PlacementHint::Auto).expect("fits");
        b.iter(|| h.access(obj, 0, false).expect("live"));
    });
    group.bench_function("rebalance_512_objs", |b| {
        let mut h = heap();
        let mut rng = StdRng::seed_from_u64(1);
        let objs: Vec<_> = (0..512)
            .map(|_| h.alloc(4096, PlacementHint::Auto).expect("fits"))
            .collect();
        let mut zipf = ZipfStream::new(512, 1.1);
        for _ in 0..10_000 {
            let o = objs[zipf.next(&mut rng) as usize];
            h.access(o, 0, false).expect("live");
        }
        b.iter(|| h.rebalance().moves.len());
    });
    group.finish();
}

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_runtime");
    group.sample_size(20);
    // A 3-wide, 20-deep DAG.
    let mut tasks = Vec::new();
    let mut id = 0u32;
    let mut prev: Option<u32> = None;
    for _ in 0..20 {
        let mut layer = Vec::new();
        for _ in 0..3 {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            tasks.push(TaskSpec::new(id, SimTime::from_us(10.0), deps));
            layer.push(id);
            id += 1;
        }
        tasks.push(TaskSpec::new(id, SimTime::from_us(5.0), layer));
        prev = Some(id);
        id += 1;
    }
    let execs: Vec<Executor> = (0..4)
        .map(|d| Executor {
            domain: d,
            speed: 1.0,
            half: Half::Bottom,
        })
        .collect();
    let rt = DagRuntime::new(execs, RecoveryMode::Idempotent);
    let mut rng = StdRng::seed_from_u64(2);
    let failures = FailureSchedule::draw(
        4,
        SimTime::from_us(100.0),
        SimTime::from_us(10.0),
        SimTime::from_ms(10.0),
        &mut rng,
    );
    group.bench_function("run_80_tasks_with_failures", |b| {
        b.iter(|| rt.run(&tasks, &failures).makespan);
    });
    group.finish();
}

criterion_group!(benches, bench_heap, bench_dag);
criterion_main!(benches);
