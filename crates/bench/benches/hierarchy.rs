//! Criterion benchmarks of the host memory-hierarchy model (backs
//! Table 2): raw model throughput per tier.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fcc_cache::hierarchy::{HierarchyConfig, MemoryHierarchy};
use fcc_cache::sa_cache::SetAssocCache;
use fcc_sim::SimTime;

fn bench_sa_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("hit", |b| {
        let mut cache = SetAssocCache::new(64 * 1024, 8, 64);
        cache.access(0x100, false);
        b.iter(|| cache.access(0x100, false));
    });
    group.bench_function("miss_stream", |b| {
        let mut cache = SetAssocCache::new(64 * 1024, 8, 64);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 4096;
            cache.access(addr, true)
        });
    });
    group.finish();
}

fn bench_hierarchy_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(1));
    group.bench_function("l1_hit_walk", |b| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::omega_like());
        h.access(0x100, false, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let plan = h.access(0x100, false, now);
            now = plan.ready_at;
            plan.level
        });
    });
    group.bench_function("local_miss_walk", |b| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::omega_like());
        let mut addr = 0u64;
        let mut now = SimTime::ZERO;
        b.iter(|| {
            addr = (addr + 4096) % (64 << 20);
            let plan = h.access(addr, false, now);
            now = plan.ready_at;
            plan.level
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sa_cache, bench_hierarchy_walk);
criterion_main!(benches);
