//! Criterion microbenchmarks of the DES engine hot path.
//!
//! These isolate the costs the experiment harness pays on every event:
//! calendar-queue push/pop plus slab recycling (`event_churn`), the
//! same-timestamp batch delivery path (`batch_delivery`), the credit
//! ramp-up state machine (`credit_ramp`), the allocation-free
//! deadlock scan (`deadlock_scan`), the cross-shard gateway handoff of
//! the conservative parallel executor (`cross_shard_handoff`), and the
//! calendar queue driven through the executor's epoch-bounded
//! `run_until` pattern (`calendar_sharded`). `scripts/bench_gate.sh`
//! guards the end-to-end numbers; these localize *which* layer
//! regressed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fcc_fabric::credit::RampUpState;
use fcc_sim::{Component, ComponentId, Ctx, Engine, Msg, PendingWork, ShardedEngine, SimTime};

/// A counter that re-posts to itself until `remaining` hits zero: every
/// dispatch is one slab take, one push, and one calendar pop.
struct Churner {
    remaining: u64,
    step_ps: u64,
}

struct Tick;

impl Component for Churner {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(SimTime::from_ps(self.step_ps), Tick);
        }
    }
}

fn bench_event_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_churn");
    // 900 ps stays inside the calendar window (near-future ring path);
    // 9_000_000 ps forces every push through the far-horizon heap and
    // back, so both queue regimes are covered.
    for &(label, step_ps) in &[("near", 900u64), ("far", 9_000_000u64)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &step_ps, |b, &step| {
            b.iter(|| {
                let mut eng = Engine::new(7);
                let id = eng.add_component(
                    "churner",
                    Churner {
                        remaining: 10_000,
                        step_ps: step,
                    },
                );
                eng.post(id, SimTime::ZERO, Tick);
                eng.run_until_idle();
                eng.events_dispatched()
            })
        });
    }
    group.finish();
}

/// Counts deliveries; the engine coalesces same-timestamp runs into one
/// `on_batch` call.
struct Sink {
    seen: u64,
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {
        self.seen += 1;
    }
}

fn bench_batch_delivery(c: &mut Criterion) {
    c.bench_function("batch_delivery_64x16", |b| {
        b.iter(|| {
            let mut eng = Engine::new(7);
            let id = eng.add_component("sink", Sink { seen: 0 });
            // 64 timestamps, 16 same-timestamp messages each.
            for t in 0..64u64 {
                for _ in 0..16 {
                    eng.post(id, SimTime::from_ps(t * 100), Tick);
                }
            }
            eng.run_until_idle();
            eng.component::<Sink>(id).seen
        })
    });
}

fn bench_credit_ramp(c: &mut Criterion) {
    c.bench_function("credit_ramp_64in", |b| {
        b.iter(|| {
            let mut ramp = RampUpState::new(64, 2, 32, 256);
            let mut sent = 0u64;
            for _ in 0..200 {
                for i in 0..64 {
                    while ramp.may_send(i) {
                        ramp.on_send(i);
                        sent += 1;
                    }
                }
                ramp.rollover();
            }
            sent
        })
    });
}

/// A component that always reports pending work, so the deadlock scan
/// walks every entry.
struct Busy {
    id: u64,
}

impl Component for Busy {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        out.push(PendingWork {
            what: format!("inflight txn {}", self.id),
            waiting_on: None,
        });
    }
}

fn bench_deadlock_scan(c: &mut Criterion) {
    let mut eng = Engine::new(7);
    for i in 0..256u64 {
        eng.add_component(format!("busy{i}"), Busy { id: i });
    }
    c.bench_function("deadlock_scan_256c", |b| {
        b.iter(|| eng.deadlock_report().map(|r| r.stuck.len()))
    });
}

/// Bounces a `u64` countdown through `via` (a shard gateway), so every
/// hop crosses the shard boundary: stage, merge, re-post.
struct PingPong {
    via: Option<ComponentId>,
    delay_ps: u64,
}

impl Component for PingPong {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if let (Ok(v), Some(t)) = (msg.downcast::<u64>(), self.via) {
            if v > 0 {
                ctx.send(t, SimTime::from_ps(self.delay_ps), v - 1);
            }
        }
    }
}

/// The cross-shard message handoff: a two-shard ping-pong where every
/// message crosses the gateway cable, measured serially (pure relay +
/// epoch machinery) and with two workers (adds the barrier handshakes).
fn bench_cross_shard_handoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_shard_handoff");
    for &workers in &[1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut sh = ShardedEngine::new(7, 2);
                    let (ga, gb) = sh.link(0, 1, SimTime::from_ns(50.0), "cable");
                    let p0 = sh.engine_mut(0).add_component(
                        "p0",
                        PingPong {
                            via: Some(ga),
                            delay_ps: 100,
                        },
                    );
                    let p1 = sh.engine_mut(1).add_component(
                        "p1",
                        PingPong {
                            via: Some(gb),
                            delay_ps: 100,
                        },
                    );
                    sh.engine_mut(0)
                        .component_mut::<fcc_sim::ShardGateway>(ga)
                        .set_local_peer(p0);
                    sh.engine_mut(1)
                        .component_mut::<fcc_sim::ShardGateway>(gb)
                        .set_local_peer(p1);
                    sh.engine_mut(0).post(p0, SimTime::ZERO, 500u64);
                    sh.run(workers);
                    sh.total_events()
                })
            },
        );
    }
    group.finish();
}

/// The calendar queue under sharded load: four shards of self-posting
/// churners (the near-window ring path) executed through the executor's
/// epoch-bounded `run_until` calls instead of one monolithic
/// `run_until_idle`, plus a cross-shard ping keeping the gateways and
/// merge path warm. One worker, so the measurement isolates the
/// epoch-chunked calendar cost from thread scheduling.
fn bench_calendar_sharded(c: &mut Criterion) {
    c.bench_function("calendar_sharded_4x8churn", |b| {
        b.iter(|| {
            let mut sh = ShardedEngine::new(7, 4);
            let mut cable0 = None;
            for d in 0..3usize {
                let pair = sh.link(d, d + 1, SimTime::from_ns(200.0), "cable");
                if d == 0 {
                    cable0 = Some(pair);
                }
            }
            for d in 0..4usize {
                for i in 0..8u64 {
                    let eng = sh.engine_mut(d);
                    let id = eng.add_component(
                        format!("churn{d}x{i}"),
                        Churner {
                            remaining: 2_000,
                            step_ps: 900,
                        },
                    );
                    eng.post(id, SimTime::ZERO, Tick);
                }
            }
            if let Some((ga, gb)) = cable0 {
                let p0 = sh.engine_mut(0).add_component(
                    "p0",
                    PingPong {
                        via: Some(ga),
                        delay_ps: 100,
                    },
                );
                let p1 = sh.engine_mut(1).add_component(
                    "p1",
                    PingPong {
                        via: Some(gb),
                        delay_ps: 100,
                    },
                );
                sh.engine_mut(0)
                    .component_mut::<fcc_sim::ShardGateway>(ga)
                    .set_local_peer(p0);
                sh.engine_mut(1)
                    .component_mut::<fcc_sim::ShardGateway>(gb)
                    .set_local_peer(p1);
                sh.engine_mut(0).post(p0, SimTime::ZERO, 40u64);
            }
            sh.run(1);
            sh.total_events()
        })
    });
}

criterion_group!(
    benches,
    bench_event_churn,
    bench_batch_delivery,
    bench_credit_ramp,
    bench_deadlock_scan,
    bench_cross_shard_handoff,
    bench_calendar_sharded
);
criterion_main!(benches);
