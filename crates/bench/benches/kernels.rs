//! Criterion microbenchmarks of the baseband DSP kernels (the real
//! compute behind experiment E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fcc_baseband::channel::{randn_c, MimoChannel};
use fcc_baseband::coding::ConvCode;
use fcc_baseband::cplx::Cplx;
use fcc_baseband::equalizer::zf_equalize;
use fcc_baseband::fft::fft_inplace;
use fcc_baseband::modulation::Modulation;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[64usize, 256, 1024] {
        let data: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut d = data.clone();
                fft_inplace(&mut d);
                d[0]
            })
        });
    }
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let code = ConvCode::new();
    let bits: Vec<u8> = (0..512).map(|_| rng.gen_range(0..2)).collect();
    let coded = code.encode(&bits);
    c.bench_function("viterbi_decode_512b", |b| b.iter(|| code.decode(&coded)));
}

fn bench_zf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let ch = MimoChannel::rayleigh(4, 4, 30.0, &mut rng);
    let x: Vec<Cplx> = (0..4).map(|_| randn_c(&mut rng)).collect();
    let y = ch.apply(&x, &mut rng);
    c.bench_function("zf_equalize_4x4", |b| {
        b.iter(|| zf_equalize(ch.csi(), &y, 4, 4))
    });
}

fn bench_modulation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let bits: Vec<u8> = (0..1536).map(|_| rng.gen_range(0..2)).collect();
    c.bench_function("qam64_map_demap_1536b", |b| {
        b.iter(|| {
            let syms = Modulation::Qam64.map_stream(&bits);
            Modulation::Qam64.demap_stream(&syms)
        })
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_viterbi,
    bench_zf,
    bench_modulation
);
criterion_main!(benches);
