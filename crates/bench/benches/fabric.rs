//! Criterion benchmarks of the fabric simulator itself: protocol state
//! machines and end-to-end event throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fcc_bench::calib;
use fcc_bench::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};
use fcc_fabric::topology::{self, FAM_BASE};
use fcc_proto::addr::NodeId;
use fcc_proto::channel::{MemOpcode, Transaction, TransactionKind};
use fcc_proto::flit::{FlitMode, FlitPayload};
use fcc_proto::link::{CreditConfig, LinkLayer, RxAction};
use fcc_sim::{Engine, SimTime};

fn bench_link_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_layer");
    group.throughput(Throughput::Elements(1));
    group.bench_function("send_receive_release", |b| {
        let cfg = CreditConfig {
            buffer_flits: 1 << 16,
            overcommit: 1.0,
            return_threshold: 4,
            retry_depth: 1 << 16,
        };
        let mut tx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        let mut rx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        let mut i = 0u64;
        b.iter(|| {
            let payload = FlitPayload::Transaction(Transaction {
                id: i,
                kind: TransactionKind::Mem(MemOpcode::MemRd),
                addr: i * 64,
                bytes: 0,
                src: NodeId(0),
                dst: NodeId(1),
            });
            i += 1;
            let flit = tx.send(payload).expect("credit");
            match rx.receive(flit) {
                RxAction::Deliver(p) => {
                    rx.release(p.msg_class());
                }
                other => panic!("unexpected {other:?}"),
            }
            if let Some(update) = rx.take_credit_update() {
                let f = rx.send(update).expect("ctrl");
                tx.receive(f);
            }
            if let Some(ack) = rx.take_ack() {
                let f = rx.send(ack).expect("ctrl");
                tx.receive(f);
            }
        });
    });
    group.finish();
}

/// End-to-end: how many simulated fabric operations per wall-clock second
/// the DES sustains (1000 remote reads through FHA → switch → FAM).
fn bench_fabric_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1000));
    group.bench_function("1000_remote_reads", |b| {
        b.iter(|| {
            let mut engine = Engine::new(1);
            let topo = topology::single_switch(
                &mut engine,
                calib::topo_spec(),
                1,
                vec![calib::fam(1 << 24)],
            );
            let lg = engine.add_component(
                "lg",
                LoadGen::new(LoadCfg {
                    fha: topo.hosts[0].fha,
                    base: FAM_BASE,
                    len: 1 << 20,
                    op_bytes: 64,
                    write: false,
                    window: 8,
                    count: Some(1000),
                    stop_at: SimTime::MAX,
                    pattern: AddrPattern::Sequential,
                }),
            );
            engine.post(lg, SimTime::ZERO, StartLoad);
            engine.run_until_idle();
            engine.component::<LoadGen>(lg).completed()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_link_layer, bench_fabric_ops);
criterion_main!(benches);
