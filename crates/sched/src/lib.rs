//! Fabric-resident multi-tenant QoS scheduling.
//!
//! The paper's Design Principle #2 moves resource management *into* the
//! fabric: credit allocation, admission, and tenant coordination are
//! fabric-level concerns, not per-host ones. This crate is that policy
//! surface, as three layers:
//!
//! - [`partition`] — hierarchical weighted credit partitioning: a
//!   windowed credit pool divided among tenant *groups* and, within each
//!   group, among tenants, with per-tenant weights, guaranteed floors,
//!   and work-conserving redistribution of idle tenants' shares. Every
//!   tenant carries its own ledger, and [`CreditPartition::audit`]
//!   verifies the isolation invariants (allocations exactly exhaust the
//!   pool; no tenant spends past its partition; floors always honored).
//! - [`admission`] — the fabric-level admission point: a
//!   [`FabricScheduler`] classifies flits by their source node's tenant
//!   and enforces the partition at switch ingress. `fcc-fabric` installs
//!   one per switch; `fcc-core`'s eTrans keeps its host-side pacing but
//!   sources its per-tenant budgets from the same partition (see
//!   [`budget`]), so there is a single policy surface instead of
//!   scattered ad-hoc throttles.
//! - [`budget`] — derives per-tenant sustained-rate budgets
//!   ([`TenantRate`]) from a partition, for endpoints that pace in
//!   Gbit/s rather than credits per window.
//!
//! The isolation story is *verified*, not just measured: `fcc-verify`'s
//! `check-sched` model check drives [`CreditPartition`] through every
//! small-K demand interleaving and proves a hog tenant cannot starve a
//! floor-holding tenant, and the switch-level ledger audits run after
//! every E12 interference experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod budget;
pub mod partition;

pub use admission::{FabricScheduler, InstallScheduler};
pub use budget::{tenant_rates, TenantRate};
pub use partition::{CreditPartition, TenantId, TenantShare};
