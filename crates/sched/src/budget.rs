//! Rate-budget derivation: partition shares as Gbit/s budgets.
//!
//! Endpoints that pace in sustained bandwidth rather than credits per
//! window — the eTrans engine's per-tenant token buckets — source their
//! budgets from the same [`CreditPartition`] the fabric admission points
//! enforce, so host-side pacing and fabric-side admission agree on one
//! policy instead of maintaining parallel ad-hoc throttles.

use crate::partition::{CreditPartition, TenantId};

/// A tenant's derived sustained-rate budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRate {
    /// The tenant.
    pub tenant: TenantId,
    /// Sustained rate in Gbit/s: the tenant's fraction of the pool
    /// applied to the admission point's total bandwidth.
    pub gbps: f64,
    /// Burst allowance in bytes: one window's credit allocation worth
    /// of flits.
    pub burst_bytes: u64,
}

/// Derives per-tenant rate budgets from `partition`: each tenant's share
/// of `total_gbps` is its allocation over the effective pool, and its
/// burst is its window allocation in flits of `flit_bytes`. Returned in
/// tenant-id order.
pub fn tenant_rates(
    partition: &CreditPartition,
    total_gbps: f64,
    flit_bytes: u32,
) -> Vec<TenantRate> {
    let pool = f64::from(partition.pool().max(1));
    partition
        .allocations()
        .map(|(tenant, alloc)| TenantRate {
            tenant,
            gbps: total_gbps * f64::from(alloc) / pool,
            burst_bytes: (u64::from(alloc) * u64::from(flit_bytes)).max(u64::from(flit_bytes)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TenantShare;

    #[test]
    fn rates_are_proportional_and_exhaustive() {
        let mut p = CreditPartition::new(100);
        p.add_tenant(
            1,
            TenantShare {
                group: 0,
                weight: 1,
                floor: 0,
            },
        );
        p.add_tenant(
            2,
            TenantShare {
                group: 0,
                weight: 3,
                floor: 0,
            },
        );
        let rates = tenant_rates(&p, 64.0, 256);
        assert_eq!(rates.len(), 2);
        let total: f64 = rates.iter().map(|r| r.gbps).sum();
        assert!((total - 64.0).abs() < 1e-9, "budgets exhaust the link");
        // Floors are min-1, so the split is (1+24.75) : (1+74.25), a
        // shade under 3:1.
        assert!(rates[1].gbps > 2.5 * rates[0].gbps);
        assert!(rates[0].burst_bytes >= 256);
    }
}
