//! Hierarchical weighted credit partitioning with per-tenant ledgers.
//!
//! A [`CreditPartition`] divides a per-window credit pool among tenants
//! in two levels: the pool is split across tenant *groups*, then each
//! group's share is split among its members. Both levels use the same
//! deterministic division: guaranteed floors first, then the remainder
//! proportionally to weights among *active* participants (largest-
//! remainder rounding, ties broken by id), so the allocations always sum
//! to the pool exactly — conservation is an equality, not a bound.
//!
//! Idle tenants (no demand in the previous window) keep only their
//! floor; their weight drops out of the proportional split, so their
//! share is redistributed to tenants with demand. The partition is
//! therefore work-conserving while still honoring every floor: a
//! floor-holding tenant that wakes up is served its floor in the very
//! window it returns, regardless of how greedy the others are.
//!
//! This layers over the per-input [`RampUpState`] egress allocator in
//! `fcc-fabric`: the ramp governs *port* credits inside one switch,
//! while the partition governs *tenant* credits across the whole
//! admission point. Both are audited by the same ledger sweeps.
//!
//! [`RampUpState`]: https://docs.rs/fcc-fabric (crate `fcc-fabric`, module `credit`)

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Tenant identifier (matches the tenant field of eTrans attributes).
pub type TenantId = u32;

/// A tenant's configured share of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantShare {
    /// Scheduling group (level 1 of the hierarchy). Group weight
    /// defaults to the sum of member weights; see
    /// [`CreditPartition::set_group_weight`].
    pub group: u32,
    /// Proportional weight within the group (level 2).
    pub weight: u32,
    /// Guaranteed minimum credits per window. Treated as at least 1:
    /// every tenant must drain — a zero allocation would strand gated
    /// flits at the admission point forever.
    pub floor: u32,
}

impl TenantShare {
    /// The enforced floor: configured floor, but at least 1 credit so
    /// every tenant's gated flits can always drain.
    pub fn floor_min1(&self) -> u32 {
        self.floor.max(1)
    }
}

/// Per-tenant scheduling state and ledger.
#[derive(Debug, Clone)]
struct Tenant {
    share: TenantShare,
    /// This window's credit allocation.
    alloc: u32,
    /// High-water allocation this window: mid-window reconfiguration may
    /// cut `alloc` below what was already legally spent, so the spend
    /// bound is the largest allocation the window granted.
    grant_hw: u32,
    /// Credits spent this window.
    spent: u32,
    /// Whether the tenant demanded (spent or was denied) this window.
    demanded: bool,
    /// Whether the tenant demanded in the previous window; idle tenants
    /// keep their floor but forfeit their weighted share.
    active: bool,
    /// Cumulative credits granted over completed windows.
    granted_total: u64,
    /// Cumulative credits spent.
    spent_total: u64,
    /// Starvation probe: denials that hit a tenant before it received
    /// floor-worth of service in the window. Structurally impossible
    /// (allocations never drop below the floor); audited to stay 0.
    denied_under_floor: u64,
}

/// A hierarchical weighted credit partition over one admission point.
#[derive(Debug, Clone)]
pub struct CreditPartition {
    pool: u32,
    tenants: BTreeMap<TenantId, Tenant>,
    /// Explicit group-weight overrides (default: sum of member weights).
    group_weight: BTreeMap<u32, u32>,
    /// Credits assigned to no tenant. Zero whenever any tenant exists
    /// (work conservation); equal to the pool when the partition is
    /// empty.
    spare: u32,
    windows: u64,
}

/// One participant in a weighted division.
struct Claim {
    weight: u64,
    floor: u32,
    active: bool,
}

/// Splits `total` across `weights` proportionally with largest-remainder
/// rounding (deterministic: remainder ties go to the lower index). The
/// result sums to `total` exactly; zero-weight entries receive nothing.
fn largest_remainder(total: u32, weights: &[u64]) -> Vec<u32> {
    let mut out = vec![0u32; weights.len()];
    let sum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if sum == 0 {
        if let Some(first) = out.first_mut() {
            // No eligible recipient: conserve by parking on the first
            // entry. Callers guarantee a nonzero weight exists.
            *first = total;
        }
        return out;
    }
    let mut given: u32 = 0;
    let mut rems: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    for (i, &w) in weights.iter().enumerate() {
        let num = u128::from(total) * u128::from(w);
        // num / sum <= total, so the cast back to u32 is exact.
        out[i] = (num / sum) as u32;
        given += out[i];
        rems.push((num % sum, i));
    }
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = total - given;
    for &(_, i) in &rems {
        if left == 0 {
            break;
        }
        out[i] += 1;
        left -= 1;
    }
    out
}

/// Divides `total` among claims: floors first, the remainder by weight
/// among active claims (or all claims when none is active). If floors
/// alone exceed `total`, the whole budget is split proportionally to the
/// floors instead. Always sums to `total` exactly.
fn divide(total: u32, claims: &[Claim]) -> Vec<u32> {
    if claims.is_empty() {
        return Vec::new();
    }
    let floor_sum: u64 = claims.iter().map(|c| u64::from(c.floor)).sum();
    if floor_sum >= u64::from(total) {
        let floors: Vec<u64> = claims.iter().map(|c| u64::from(c.floor)).collect();
        return largest_remainder(total, &floors);
    }
    let mut out: Vec<u32> = claims.iter().map(|c| c.floor).collect();
    // floor_sum < total, so the subtraction fits in u32.
    let rem = total - floor_sum as u32;
    let any_active = claims.iter().any(|c| c.active);
    let mut weights: Vec<u64> = claims
        .iter()
        .map(|c| if c.active || !any_active { c.weight } else { 0 })
        .collect();
    if weights.iter().sum::<u64>() == 0 {
        // All eligible weights are zero: split the remainder evenly
        // among the eligible claims.
        for (w, c) in weights.iter_mut().zip(claims) {
            if c.active || !any_active {
                *w = 1;
            }
        }
    }
    for (o, extra) in out.iter_mut().zip(largest_remainder(rem, &weights)) {
        *o += extra;
    }
    out
}

impl CreditPartition {
    /// Creates an empty partition over `pool` credits per window.
    pub fn new(pool: u32) -> Self {
        CreditPartition {
            pool,
            tenants: BTreeMap::new(),
            group_weight: BTreeMap::new(),
            spare: pool,
            windows: 0,
        }
    }

    /// The configured per-window pool.
    pub fn configured_pool(&self) -> u32 {
        self.pool
    }

    /// The effective per-window pool: the configured pool, grown if
    /// needed so every tenant's floor is satisfiable. Allocations sum to
    /// exactly this value.
    pub fn pool(&self) -> u32 {
        let floors: u64 = self
            .tenants
            .values()
            .map(|t| u64::from(t.share.floor_min1()))
            .sum();
        // A u32 count of tenants each with a u32 floor cannot overflow
        // u64; saturate defensively for the cast back.
        u64::from(self.pool).max(floors).min(u64::from(u32::MAX)) as u32
    }

    /// Adds (or reconfigures) a tenant and rebalances immediately. New
    /// tenants start active, so they receive a weighted share in the
    /// current window.
    pub fn add_tenant(&mut self, id: TenantId, share: TenantShare) {
        match self.tenants.get_mut(&id) {
            Some(t) => t.share = share,
            None => {
                self.tenants.insert(
                    id,
                    Tenant {
                        share,
                        alloc: 0,
                        grant_hw: 0,
                        spent: 0,
                        demanded: false,
                        active: true,
                        granted_total: 0,
                        spent_total: 0,
                        denied_under_floor: 0,
                    },
                );
            }
        }
        self.rebalance();
    }

    /// Removes a tenant, redistributing its share. Returns whether it
    /// existed.
    pub fn remove_tenant(&mut self, id: TenantId) -> bool {
        let existed = self.tenants.remove(&id).is_some();
        self.rebalance();
        existed
    }

    /// Updates a tenant's weight. Returns whether the tenant exists.
    pub fn set_weight(&mut self, id: TenantId, weight: u32) -> bool {
        let Some(t) = self.tenants.get_mut(&id) else {
            return false;
        };
        t.share.weight = weight;
        self.rebalance();
        true
    }

    /// Updates a tenant's floor. Returns whether the tenant exists.
    pub fn set_floor(&mut self, id: TenantId, floor: u32) -> bool {
        let Some(t) = self.tenants.get_mut(&id) else {
            return false;
        };
        t.share.floor = floor;
        self.rebalance();
        true
    }

    /// Overrides a group's weight in the level-1 split (default: the sum
    /// of its members' weights).
    pub fn set_group_weight(&mut self, group: u32, weight: u32) {
        self.group_weight.insert(group, weight);
        self.rebalance();
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the partition has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// This window's allocation for `id`.
    pub fn alloc(&self, id: TenantId) -> Option<u32> {
        self.tenants.get(&id).map(|t| t.alloc)
    }

    /// Credits `id` has spent this window.
    pub fn spent(&self, id: TenantId) -> Option<u32> {
        self.tenants.get(&id).map(|t| t.spent)
    }

    /// Cumulative credits granted to `id` over completed windows.
    pub fn granted_total(&self, id: TenantId) -> Option<u64> {
        self.tenants.get(&id).map(|t| t.granted_total)
    }

    /// Cumulative credits spent by `id`.
    pub fn spent_total(&self, id: TenantId) -> Option<u64> {
        self.tenants.get(&id).map(|t| t.spent_total)
    }

    /// Per-tenant allocations, in tenant-id order.
    pub fn allocations(&self) -> impl Iterator<Item = (TenantId, u32)> + '_ {
        self.tenants.iter().map(|(&id, t)| (id, t.alloc))
    }

    /// Credits currently assigned to no tenant (nonzero only when the
    /// partition is empty).
    pub fn spare(&self) -> u32 {
        self.spare
    }

    /// Completed windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Whether `id` could spend a credit right now. Unknown tenants are
    /// ungoverned and always pass.
    pub fn may_spend(&self, id: TenantId) -> bool {
        self.tenants.get(&id).is_none_or(|t| t.spent < t.alloc)
    }

    /// Attempts to spend one credit for `id`, recording demand either
    /// way. Returns whether the spend was admitted. Unknown tenants are
    /// ungoverned and always pass.
    pub fn try_spend(&mut self, id: TenantId) -> bool {
        let Some(t) = self.tenants.get_mut(&id) else {
            return true;
        };
        t.demanded = true;
        if t.spent < t.alloc {
            t.spent += 1;
            t.spent_total += 1;
            true
        } else {
            if t.spent < t.share.floor_min1() {
                t.denied_under_floor += 1;
            }
            false
        }
    }

    /// Closes the window: settles each tenant's ledger, promotes this
    /// window's demand to next window's activity, and recomputes the
    /// allocations.
    pub fn rollover(&mut self) {
        for t in self.tenants.values_mut() {
            t.granted_total += u64::from(t.grant_hw);
            t.active = t.demanded;
            t.demanded = false;
            t.spent = 0;
            t.grant_hw = 0;
        }
        self.windows += 1;
        self.rebalance();
    }

    /// Recomputes every allocation from the current shares and activity.
    fn rebalance(&mut self) {
        let ep = self.pool();
        if self.tenants.is_empty() {
            self.spare = ep;
            return;
        }
        // Level 1: aggregate per group, in group-id order.
        struct Group {
            weight_sum: u64,
            floor_sum: u64,
            active: bool,
            members: Vec<TenantId>,
        }
        let mut groups: BTreeMap<u32, Group> = BTreeMap::new();
        for (&id, t) in &self.tenants {
            let g = groups.entry(t.share.group).or_insert(Group {
                weight_sum: 0,
                floor_sum: 0,
                active: false,
                members: Vec::new(),
            });
            g.weight_sum += u64::from(t.share.weight);
            g.floor_sum += u64::from(t.share.floor_min1());
            g.active |= t.active;
            g.members.push(id);
        }
        let group_claims: Vec<Claim> = groups
            .iter()
            .map(|(gid, g)| Claim {
                weight: self
                    .group_weight
                    .get(gid)
                    .map_or(g.weight_sum, |&w| u64::from(w)),
                // Group floors fit u32: they are bounded by the
                // effective pool computed from the same floors.
                floor: g.floor_sum.min(u64::from(u32::MAX)) as u32,
                active: g.active,
            })
            .collect();
        let group_alloc = divide(ep, &group_claims);
        // Level 2: split each group's share among its members.
        for (g, gshare) in groups.values().zip(group_alloc) {
            let claims: Vec<Claim> = g
                .members
                .iter()
                .map(|id| {
                    let t = &self.tenants[id];
                    Claim {
                        weight: u64::from(t.share.weight),
                        floor: t.share.floor_min1(),
                        active: t.active,
                    }
                })
                .collect();
            for (id, a) in g.members.iter().zip(divide(gshare, &claims)) {
                // members came from the same map; the entry exists.
                if let Some(t) = self.tenants.get_mut(id) {
                    t.alloc = a;
                    t.grant_hw = t.grant_hw.max(a);
                }
            }
        }
        self.spare = 0;
    }

    /// Audits the partition's isolation invariants:
    ///
    /// 1. **Conservation**: per-tenant allocations plus spare equal the
    ///    effective pool exactly.
    /// 2. **Containment**: no tenant's spend exceeds the largest
    ///    allocation it held this window.
    /// 3. **Floors**: every tenant's allocation is at least its floor.
    /// 4. **No starvation**: no tenant was ever denied before receiving
    ///    floor-worth of service in a window.
    pub fn audit(&self) -> Result<(), String> {
        let ep = u64::from(self.pool());
        let total: u64 = self
            .tenants
            .values()
            .map(|t| u64::from(t.alloc))
            .sum::<u64>()
            + u64::from(self.spare);
        if total != ep {
            return Err(format!(
                "conservation: allocations+spare {total} != pool {ep}"
            ));
        }
        for (id, t) in &self.tenants {
            if t.spent > t.grant_hw.max(t.alloc) {
                return Err(format!(
                    "tenant {id}: spent {} past its partition {}",
                    t.spent,
                    t.grant_hw.max(t.alloc)
                ));
            }
            if t.alloc < t.share.floor_min1() {
                return Err(format!(
                    "tenant {id}: allocation {} below floor {}",
                    t.alloc,
                    t.share.floor_min1()
                ));
            }
            if t.denied_under_floor > 0 {
                return Err(format!(
                    "tenant {id}: denied {} time(s) under its floor",
                    t.denied_under_floor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share(group: u32, weight: u32, floor: u32) -> TenantShare {
        TenantShare {
            group,
            weight,
            floor,
        }
    }

    #[test]
    fn allocations_sum_to_pool_exactly() {
        let mut p = CreditPartition::new(100);
        p.add_tenant(1, share(0, 3, 0));
        p.add_tenant(2, share(0, 7, 0));
        p.add_tenant(3, share(1, 1, 5));
        let total: u32 = p.allocations().map(|(_, a)| a).sum();
        assert_eq!(total, p.pool());
        assert_eq!(p.spare(), 0);
        p.audit().expect("clean");
    }

    #[test]
    fn weights_divide_proportionally_within_a_group() {
        let mut p = CreditPartition::new(100);
        p.add_tenant(1, share(0, 1, 0));
        p.add_tenant(2, share(0, 3, 0));
        let a1 = p.alloc(1).unwrap_or(0);
        let a2 = p.alloc(2).unwrap_or(0);
        assert_eq!(a1 + a2, 100);
        assert!(a2 > 2 * a1, "weight 3 vs 1: got {a1} / {a2}");
    }

    #[test]
    fn group_weights_partition_level_one() {
        let mut p = CreditPartition::new(120);
        p.add_tenant(1, share(0, 1, 0));
        p.add_tenant(2, share(1, 1, 0));
        p.set_group_weight(0, 2);
        p.set_group_weight(1, 1);
        assert_eq!(p.alloc(1), Some(80));
        assert_eq!(p.alloc(2), Some(40));
    }

    #[test]
    fn floors_inflate_an_undersized_pool() {
        let mut p = CreditPartition::new(4);
        p.add_tenant(1, share(0, 1, 6));
        p.add_tenant(2, share(0, 1, 6));
        assert_eq!(p.pool(), 12, "pool grows to cover floors");
        assert!(p.alloc(1) >= Some(6));
        assert!(p.alloc(2) >= Some(6));
        p.audit().expect("clean");
    }

    #[test]
    fn idle_share_redistributes_but_floor_survives() {
        let mut p = CreditPartition::new(100);
        p.add_tenant(1, share(0, 1, 10)); // will go idle
        p.add_tenant(2, share(0, 1, 1)); // stays hot
                                         // Window 0: only tenant 2 demands.
        while p.try_spend(2) {}
        p.rollover();
        // Tenant 1 is now idle: floor only; the rest flows to tenant 2.
        assert_eq!(p.alloc(1), Some(10));
        assert_eq!(p.alloc(2), Some(90));
        // Tenant 1 wakes: it still gets its floor immediately.
        let mut served = 0;
        for _ in 0..100 {
            if p.try_spend(1) {
                served += 1;
            }
        }
        assert_eq!(served, 10, "floor honored in the wake-up window");
        p.audit().expect("clean");
    }

    #[test]
    fn spend_is_capped_at_the_allocation() {
        let mut p = CreditPartition::new(10);
        p.add_tenant(1, share(0, 1, 0));
        let alloc = p.alloc(1).unwrap_or(0);
        let mut served = 0;
        for _ in 0..50 {
            if p.try_spend(1) {
                served += 1;
            }
        }
        assert_eq!(served, alloc);
        assert!(!p.may_spend(1));
        p.rollover();
        assert!(p.may_spend(1), "window rollover refills");
        p.audit().expect("clean");
    }

    #[test]
    fn unknown_tenants_are_ungoverned() {
        let mut p = CreditPartition::new(1);
        p.add_tenant(1, share(0, 1, 0));
        assert!(p.may_spend(99));
        assert!(p.try_spend(99));
    }

    #[test]
    fn ledgers_accumulate_across_windows() {
        let mut p = CreditPartition::new(8);
        p.add_tenant(1, share(0, 1, 0));
        while p.try_spend(1) {}
        p.rollover();
        while p.try_spend(1) {}
        p.rollover();
        assert_eq!(p.windows(), 2);
        assert_eq!(p.granted_total(1), Some(16));
        assert_eq!(p.spent_total(1), Some(16));
    }

    #[test]
    fn empty_partition_parks_the_pool_as_spare() {
        let mut p = CreditPartition::new(7);
        assert_eq!(p.spare(), 7);
        p.audit().expect("clean");
        p.add_tenant(1, share(0, 1, 0));
        assert_eq!(p.spare(), 0);
        p.remove_tenant(1);
        assert_eq!(p.spare(), 7);
        p.audit().expect("clean");
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    /// An operation on the partition, generated from four small ints.
    fn apply(p: &mut CreditPartition, op: u8, id: u8, a: u8, b: u8) {
        let id = TenantId::from(id % 8);
        match op % 6 {
            0 => p.add_tenant(
                id,
                TenantShare {
                    group: u32::from(a % 3),
                    weight: u32::from(a),
                    floor: u32::from(b % 16),
                },
            ),
            1 => {
                p.remove_tenant(id);
            }
            2 => {
                p.set_weight(id, u32::from(a));
            }
            3 => {
                p.set_floor(id, u32::from(b % 16));
            }
            4 => {
                // Spend up to `a` credits (idle-redistribution feeder:
                // tenants that never land here go idle next window).
                for _ in 0..(a % 32) {
                    let _ = p.try_spend(id);
                }
            }
            _ => p.rollover(),
        }
    }

    proptest! {
        /// Conservation holds after every step of an arbitrary sequence
        /// of weight updates, tenant add/remove, spends, and rollovers:
        /// the per-tenant allocations (plus spare when empty) equal the
        /// pool exactly, spends never escape their partition, and no
        /// tenant is ever denied under its floor.
        #[test]
        fn partition_conserves_credits_under_arbitrary_ops(
            pool in 0u32..200,
            ops in prop::collection::vec(
                (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
                0..120,
            ),
        ) {
            let mut p = CreditPartition::new(pool);
            prop_assert!(p.audit().is_ok());
            for &(op, id, a, b) in &ops {
                apply(&mut p, op, id, a, b);
                let total: u64 = p.allocations().map(|(_, x)| u64::from(x)).sum::<u64>()
                    + u64::from(p.spare());
                prop_assert_eq!(total, u64::from(p.pool()));
                if let Err(e) = p.audit() {
                    prop_assert!(false, "audit failed: {}", e);
                }
            }
        }
    }
}
