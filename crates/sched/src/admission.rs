//! The fabric-level admission point.
//!
//! A [`FabricScheduler`] sits at switch ingress: it classifies each flit
//! by its *source node's* tenant and enforces a [`CreditPartition`]
//! window over dispatches. The switch probes [`FabricScheduler::admits`]
//! before moving a flit to its egress and charges the tenant's ledger
//! with [`FabricScheduler::charge`] when the flit actually departs; a
//! tenant that has exhausted its window allocation simply waits for the
//! next rollover, exactly like a credit-starved egress. Flits whose
//! source is unmapped (link-layer control, gateway bookkeeping) are
//! ungoverned and always pass.
//!
//! Classifying on the source node makes the admission point **edge
//! placement** the natural deployment: each switch maps only the nodes
//! attached to it, so a tenant is gated where it injects and a deferred
//! flit waits in its own host-port queue, backpressuring only its own
//! adapter. Mapping remote nodes mid-fabric works mechanically but
//! composes badly with credit flow control: a deferred transit flit
//! pins its ingress buffer (and the upstream link's credits) for up to
//! a window, head-of-line-blocking ungoverned traffic — completions,
//! other tenants' transit — behind it. Containment at injection already
//! bounds what a hog can put in flight anywhere downstream.

use std::collections::BTreeMap;

use fcc_proto::addr::NodeId;
use fcc_sim::SimTime;

use crate::partition::{CreditPartition, TenantId};

/// Installs a scheduler on a switch (message form, for manager-driven
/// installation; topology builders call
/// `FabricSwitch::install_scheduler` directly).
#[derive(Debug, Clone)]
pub struct InstallScheduler {
    /// The scheduler to install.
    pub sched: FabricScheduler,
}

/// A per-admission-point tenant scheduler: a credit partition, a window
/// period, and the node → tenant classification map.
#[derive(Debug, Clone)]
pub struct FabricScheduler {
    partition: CreditPartition,
    window: SimTime,
    map: BTreeMap<NodeId, TenantId>,
    /// Flits admitted (and charged) at this point.
    pub admitted: u64,
    /// Gate probes deferred for an exhausted tenant window. Counts
    /// retry attempts, not unique flits: a flit re-probed across
    /// scheduling sweeps accumulates.
    pub deferred: u64,
}

impl FabricScheduler {
    /// Creates a scheduler enforcing `partition` over windows of length
    /// `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — the admission point must roll
    /// windows to make progress.
    pub fn new(partition: CreditPartition, window: SimTime) -> Self {
        assert!(window > SimTime::ZERO, "scheduler window must be positive");
        FabricScheduler {
            partition,
            window,
            map: BTreeMap::new(),
            admitted: 0,
            deferred: 0,
        }
    }

    /// Classifies `node` as belonging to `tenant`.
    pub fn map_node(&mut self, node: NodeId, tenant: TenantId) {
        self.map.insert(node, tenant);
    }

    /// The tenant a node belongs to, if mapped.
    pub fn tenant_of(&self, node: NodeId) -> Option<TenantId> {
        self.map.get(&node).copied()
    }

    /// The window period.
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// Non-consuming gate probe: whether a flit sourced at `src` may
    /// dispatch now. Counts a deferral when the answer is no.
    pub fn admits(&mut self, src: NodeId) -> bool {
        let ok = match self.tenant_of(src) {
            Some(t) => self.partition.may_spend(t),
            None => true,
        };
        if !ok {
            self.deferred += 1;
        }
        ok
    }

    /// Charges one credit for a dispatched flit sourced at `src`. Must
    /// follow a successful [`admits`](Self::admits) probe in the same
    /// scheduling sweep.
    pub fn charge(&mut self, src: NodeId) {
        if let Some(t) = self.tenant_of(src) {
            let ok = self.partition.try_spend(t);
            debug_assert!(ok, "charge without a successful admission probe");
            if ok {
                self.admitted += 1;
            }
        }
    }

    /// Rolls the partition window.
    pub fn rollover(&mut self) {
        self.partition.rollover();
    }

    /// The underlying partition.
    pub fn partition(&self) -> &CreditPartition {
        &self.partition
    }

    /// Mutable access to the partition (reconfiguration).
    pub fn partition_mut(&mut self) -> &mut CreditPartition {
        &mut self.partition
    }

    /// Audits the partition's per-tenant ledgers. See
    /// [`CreditPartition::audit`].
    pub fn audit(&self) -> Result<(), String> {
        self.partition.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TenantShare;

    fn sched(pool: u32) -> FabricScheduler {
        let mut p = CreditPartition::new(pool);
        p.add_tenant(
            0,
            TenantShare {
                group: 0,
                weight: 1,
                floor: 1,
            },
        );
        let mut s = FabricScheduler::new(p, SimTime::from_us(1.0));
        s.map_node(NodeId(7), 0);
        s
    }

    #[test]
    fn mapped_nodes_are_gated_and_charged() {
        let mut s = sched(3);
        for _ in 0..3 {
            assert!(s.admits(NodeId(7)));
            s.charge(NodeId(7));
        }
        assert!(!s.admits(NodeId(7)), "window exhausted");
        assert_eq!(s.admitted, 3);
        assert_eq!(s.deferred, 1);
        s.rollover();
        assert!(s.admits(NodeId(7)), "rollover refills");
        s.audit().expect("clean");
    }

    #[test]
    fn unmapped_nodes_are_ungoverned() {
        let mut s = sched(1);
        for _ in 0..10 {
            assert!(s.admits(NodeId(99)));
            s.charge(NodeId(99));
        }
        assert_eq!(s.admitted, 0, "ungoverned flits leave ledgers alone");
        s.audit().expect("clean");
    }
}
