//! CRC implementations used by the link layer.
//!
//! CXL 68 B flits are protected by a CRC-16 and 256 B flits by a CRC-32;
//! we implement both as table-driven computations. The exact polynomials in
//! the CXL specification are not public in full detail, so we use the
//! standard CRC-16/CCITT-FALSE and CRC-32 (IEEE 802.3) polynomials — the
//! simulator only needs detection behaviour, not bit compatibility.

/// CRC-16/CCITT-FALSE: polynomial 0x1021, init 0xFFFF, no reflection.
pub fn crc16(data: &[u8]) -> u16 {
    const TABLE: [u16; 256] = build_crc16_table();
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        let idx = ((crc >> 8) ^ b as u16) & 0xFF;
        crc = (crc << 8) ^ TABLE[idx as usize];
    }
    crc
}

const fn build_crc16_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, init/final 0xFFFFFFFF.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc32_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = (crc ^ b as u32) & 0xFF;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16(b""), 0xFFFF);
        assert_eq!(crc32(b""), 0);
    }

    proptest! {
        #[test]
        fn single_bit_flips_are_detected_crc16(
            data in prop::collection::vec(any::<u8>(), 1..64),
            bit in 0usize..8,
            byte_sel in any::<prop::sample::Index>(),
        ) {
            let mut corrupted = data.clone();
            let byte = byte_sel.index(corrupted.len());
            corrupted[byte] ^= 1 << bit;
            prop_assert_ne!(crc16(&data), crc16(&corrupted));
        }

        #[test]
        fn single_bit_flips_are_detected_crc32(
            data in prop::collection::vec(any::<u8>(), 1..256),
            bit in 0usize..8,
            byte_sel in any::<prop::sample::Index>(),
        ) {
            let mut corrupted = data.clone();
            let byte = byte_sel.index(corrupted.len());
            corrupted[byte] ^= 1 << bit;
            prop_assert_ne!(crc32(&data), crc32(&corrupted));
        }

        #[test]
        fn crc_is_deterministic(data in prop::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(crc16(&data), crc16(&data));
            prop_assert_eq!(crc32(&data), crc32(&data));
        }
    }
}
