//! Transaction layer: CXL.io / CXL.mem / CXL.cache channel semantics.
//!
//! The transaction layer "provides channel semantics and communication
//! primitives" (§2.1). We model the three CXL channels and a representative
//! subset of their message classes and opcodes, sufficient to express every
//! traffic pattern the paper's experiments need: host loads/stores to FAMs
//! (CXL.mem), device-coherent caching (CXL.cache), and non-coherent PCIe
//! style reads/writes (CXL.io).

use serde::{Deserialize, Serialize};

use crate::addr::NodeId;

/// The three CXL channels multiplexed over one Flex Bus link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// `CXL.io`: PCIe semantics with enhancements (non-coherent read/write).
    Io,
    /// `CXL.mem`: host load/store access to device memory.
    Mem,
    /// `CXL.cache`: device-side coherent caching of host memory.
    Cache,
}

/// CXL.mem opcodes (master-to-subordinate and subordinate-to-master).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpcode {
    // M2S Req (requests without data).
    /// Read a full cacheline, data expected (M2S Req).
    MemRd,
    /// Read with no data needed (ownership/invalidate), M2S Req.
    MemInv,
    /// Speculative read launched by a prefetcher (M2S Req).
    MemSpecRd,
    // M2S RwD (requests with data).
    /// Full-cacheline write (M2S RwD).
    MemWr,
    /// Partial-cacheline write with byte enables (M2S RwD).
    MemWrPtl,
    // S2M NDR (no-data responses).
    /// Completion without data (S2M NDR).
    Cmp,
    /// Completion granting Shared state (S2M NDR).
    CmpS,
    /// Completion granting Exclusive state (S2M NDR).
    CmpE,
    // S2M DRS (data responses).
    /// Memory data response (S2M DRS).
    MemData,
}

impl MemOpcode {
    /// Message class for credit accounting: requests, requests-with-data,
    /// no-data responses, or data responses.
    pub fn msg_class(self) -> MsgClass {
        match self {
            MemOpcode::MemRd | MemOpcode::MemInv | MemOpcode::MemSpecRd => MsgClass::Req,
            MemOpcode::MemWr | MemOpcode::MemWrPtl => MsgClass::RwD,
            MemOpcode::Cmp | MemOpcode::CmpS | MemOpcode::CmpE => MsgClass::Ndr,
            MemOpcode::MemData => MsgClass::Drs,
        }
    }

    /// Whether this opcode carries a data payload.
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MemOpcode::MemWr | MemOpcode::MemWrPtl | MemOpcode::MemData
        )
    }

    /// Whether this opcode is a response.
    pub fn is_response(self) -> bool {
        matches!(
            self,
            MemOpcode::Cmp | MemOpcode::CmpS | MemOpcode::CmpE | MemOpcode::MemData
        )
    }
}

/// CXL.cache opcodes (device-to-host requests, host snoops, responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheOpcode {
    // D2H requests.
    /// Read current value without caching (D2H Req).
    RdCurr,
    /// Read for ownership — exclusive (D2H Req).
    RdOwn,
    /// Read shared (D2H Req).
    RdShared,
    /// Write back a dirty line and invalidate (D2H Req).
    DirtyEvict,
    /// Drop a clean line (D2H Req).
    CleanEvict,
    /// Flush a line to memory (D2H Req).
    CLFlush,
    // H2D snoops.
    /// Snoop requesting data, downgrade to Shared (H2D Req).
    SnpData,
    /// Snoop invalidating the line (H2D Req).
    SnpInv,
    /// Snoop for the current value, no state change (H2D Req).
    SnpCur,
    // Responses.
    /// Global-observation response: request ordered (H2D Rsp).
    Go,
    /// Data response (H2D Data / D2H Data).
    Data,
    /// Snoop response: line was Invalid (D2H Rsp).
    RspIHitI,
    /// Snoop response: line was Shared/Exclusive, now Shared (D2H Rsp).
    RspSHitSe,
    /// Snoop response: dirty line forwarded (D2H Rsp).
    RspIFwdM,
}

impl CacheOpcode {
    /// Message class for credit accounting.
    pub fn msg_class(self) -> MsgClass {
        match self {
            CacheOpcode::RdCurr
            | CacheOpcode::RdOwn
            | CacheOpcode::RdShared
            | CacheOpcode::DirtyEvict
            | CacheOpcode::CleanEvict
            | CacheOpcode::CLFlush
            | CacheOpcode::SnpData
            | CacheOpcode::SnpInv
            | CacheOpcode::SnpCur => MsgClass::Req,
            CacheOpcode::Go | CacheOpcode::RspIHitI | CacheOpcode::RspSHitSe => MsgClass::Ndr,
            CacheOpcode::Data | CacheOpcode::RspIFwdM => MsgClass::Drs,
        }
    }

    /// Whether this opcode carries a data payload.
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            CacheOpcode::Data | CacheOpcode::RspIFwdM | CacheOpcode::DirtyEvict
        )
    }
}

/// CXL.io opcodes — PCIe-style transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOpcode {
    /// Non-posted memory read.
    MemRead,
    /// Posted memory write.
    MemWrite,
    /// Read completion with data.
    Completion,
    /// Configuration read (fabric manager / discovery).
    CfgRead,
    /// Configuration write (fabric manager / routing-table fill).
    CfgWrite,
    /// Vendor-defined message (used by the FCC control lane).
    VendorMsg,
}

impl IoOpcode {
    /// Message class for credit accounting: posted, non-posted, completion.
    pub fn msg_class(self) -> MsgClass {
        match self {
            IoOpcode::MemWrite | IoOpcode::VendorMsg => MsgClass::RwD,
            IoOpcode::MemRead | IoOpcode::CfgRead | IoOpcode::CfgWrite => MsgClass::Req,
            IoOpcode::Completion => MsgClass::Drs,
        }
    }
}

/// Credit classes: each class has an independent credit pool on a link, so
/// responses can always make progress past stalled requests (deadlock
/// avoidance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Requests without data.
    Req,
    /// Requests with data (writes).
    RwD,
    /// No-data responses.
    Ndr,
    /// Data responses.
    Drs,
    /// Link-layer control (credit updates, acks) — never blocked.
    Ctrl,
}

impl MsgClass {
    /// All credit-managed classes (excludes `Ctrl`).
    pub const MANAGED: [MsgClass; 4] = [MsgClass::Req, MsgClass::RwD, MsgClass::Ndr, MsgClass::Drs];

    /// Stable small index for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            MsgClass::Req => 0,
            MsgClass::RwD => 1,
            MsgClass::Ndr => 2,
            MsgClass::Drs => 3,
            MsgClass::Ctrl => 4,
        }
    }
}

/// A channel-tagged opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionKind {
    /// A CXL.mem transaction.
    Mem(MemOpcode),
    /// A CXL.cache transaction.
    Cache(CacheOpcode),
    /// A CXL.io transaction.
    Io(IoOpcode),
}

impl TransactionKind {
    /// The channel this transaction travels on.
    pub fn channel(self) -> Channel {
        match self {
            TransactionKind::Mem(_) => Channel::Mem,
            TransactionKind::Cache(_) => Channel::Cache,
            TransactionKind::Io(_) => Channel::Io,
        }
    }

    /// The credit class this transaction consumes.
    pub fn msg_class(self) -> MsgClass {
        match self {
            TransactionKind::Mem(op) => op.msg_class(),
            TransactionKind::Cache(op) => op.msg_class(),
            TransactionKind::Io(op) => op.msg_class(),
        }
    }

    /// Whether the transaction carries a data payload.
    pub fn carries_data(self) -> bool {
        match self {
            TransactionKind::Mem(op) => op.carries_data(),
            TransactionKind::Cache(op) => op.carries_data(),
            TransactionKind::Io(op) => {
                matches!(
                    op,
                    IoOpcode::MemWrite | IoOpcode::Completion | IoOpcode::VendorMsg
                )
            }
        }
    }

    /// Whether the transaction is a response (completes an earlier request)
    /// rather than an unsolicited request such as a snoop.
    pub fn is_response(self) -> bool {
        match self {
            TransactionKind::Mem(op) => op.is_response(),
            TransactionKind::Cache(op) => matches!(
                op,
                CacheOpcode::Go
                    | CacheOpcode::Data
                    | CacheOpcode::RspIHitI
                    | CacheOpcode::RspSHitSe
                    | CacheOpcode::RspIFwdM
            ),
            TransactionKind::Io(op) => matches!(op, IoOpcode::Completion),
        }
    }
}

/// A transaction as it moves through the fabric: one request or response.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    /// Fabric-unique id; responses echo the request id.
    pub id: u64,
    /// Opcode + channel.
    pub kind: TransactionKind,
    /// Target host physical address (or device physical address at a FAM).
    pub addr: u64,
    /// Payload length in bytes (0 for no-data messages).
    pub bytes: u32,
    /// Originating fabric node.
    pub src: NodeId,
    /// Destination fabric node.
    pub dst: NodeId,
}

impl Transaction {
    /// The causal trace context for telemetry spans: the fabric-unique
    /// transaction id doubles as the trace id, so every hop a transaction
    /// (or its data slots) takes can be stitched back together.
    pub fn trace_ctx(&self) -> fcc_telemetry::TraceCtx {
        fcc_telemetry::TraceCtx::new(self.id)
    }

    /// Builds the matching response for a request, swapping endpoints.
    pub fn response(&self, kind: TransactionKind, bytes: u32) -> Transaction {
        Transaction {
            id: self.id,
            kind,
            addr: self.addr,
            bytes,
            src: self.dst,
            dst: self.src,
        }
    }

    /// Total wire footprint: header plus payload bytes.
    ///
    /// Headers are 16 bytes in this model (CXL headers are 87–96 bits plus
    /// metadata; 16 B keeps the arithmetic honest without bit packing).
    pub fn wire_bytes(&self) -> u64 {
        16 + self.bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_classes_are_consistent() {
        assert_eq!(MemOpcode::MemRd.msg_class(), MsgClass::Req);
        assert_eq!(MemOpcode::MemWr.msg_class(), MsgClass::RwD);
        assert_eq!(MemOpcode::Cmp.msg_class(), MsgClass::Ndr);
        assert_eq!(MemOpcode::MemData.msg_class(), MsgClass::Drs);
        assert!(MemOpcode::MemData.is_response());
        assert!(!MemOpcode::MemRd.is_response());
    }

    #[test]
    fn data_carrying_opcodes() {
        assert!(MemOpcode::MemWr.carries_data());
        assert!(!MemOpcode::MemRd.carries_data());
        assert!(CacheOpcode::Data.carries_data());
        assert!(!CacheOpcode::SnpInv.carries_data());
    }

    #[test]
    fn transaction_kind_channel_mapping() {
        assert_eq!(
            TransactionKind::Mem(MemOpcode::MemRd).channel(),
            Channel::Mem
        );
        assert_eq!(
            TransactionKind::Cache(CacheOpcode::RdOwn).channel(),
            Channel::Cache
        );
        assert_eq!(
            TransactionKind::Io(IoOpcode::MemRead).channel(),
            Channel::Io
        );
    }

    #[test]
    fn response_swaps_endpoints_and_keeps_id() {
        let req = Transaction {
            id: 9,
            kind: TransactionKind::Mem(MemOpcode::MemRd),
            addr: 0x1000,
            bytes: 0,
            src: NodeId(1),
            dst: NodeId(7),
        };
        let rsp = req.response(TransactionKind::Mem(MemOpcode::MemData), 64);
        assert_eq!(rsp.id, 9);
        assert_eq!(rsp.src, NodeId(7));
        assert_eq!(rsp.dst, NodeId(1));
        assert_eq!(rsp.wire_bytes(), 80);
    }

    #[test]
    fn msg_class_indices_are_dense() {
        let mut seen = [false; 5];
        for c in MsgClass::MANAGED {
            seen[c.index()] = true;
        }
        seen[MsgClass::Ctrl.index()] = true;
        assert!(seen.iter().all(|&s| s));
    }
}
