//! Physical layer: link speeds, bifurcation, flit framing and timing.
//!
//! The Flex Bus physical layer "prepares transmitted data upon receiving
//! upper link-layer packets, deserializes the data received from the
//! physical bus" (§2.1). For the simulator the physical layer reduces to a
//! timing model: given a flit size, a lane count and a transfer rate, how
//! long does the flit occupy the wire, and what is the usable bandwidth
//! after encoding overheads?

use serde::{Deserialize, Serialize};

use fcc_sim::SimTime;

use crate::flit::FlitMode;

/// PCIe/CXL per-lane transfer rates, in giga-transfers per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkSpeed {
    /// PCIe Gen3, 8 GT/s (128b/130b encoding).
    Gen3,
    /// PCIe Gen4, 16 GT/s (128b/130b encoding).
    Gen4,
    /// PCIe Gen5 / CXL 2.0, 32 GT/s (128b/130b encoding).
    Gen5,
    /// PCIe Gen6 / CXL 3.0, 64 GT/s (PAM4 + FLIT FEC).
    Gen6,
}

impl LinkSpeed {
    /// Raw transfer rate per lane, in GT/s.
    pub fn gt_per_s(self) -> f64 {
        match self {
            LinkSpeed::Gen3 => 8.0,
            LinkSpeed::Gen4 => 16.0,
            LinkSpeed::Gen5 => 32.0,
            LinkSpeed::Gen6 => 64.0,
        }
    }

    /// Fraction of raw bits available to the data stream after line
    /// encoding and (for Gen6) FEC overhead.
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            // 128b/130b.
            LinkSpeed::Gen3 | LinkSpeed::Gen4 | LinkSpeed::Gen5 => 128.0 / 130.0,
            // PAM4 with FLIT-level FEC: ~3% overhead.
            LinkSpeed::Gen6 => 0.97,
        }
    }
}

/// Lane bifurcation of a Flex Bus port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bifurcation {
    /// Four lanes.
    X4,
    /// Eight lanes.
    X8,
    /// Sixteen lanes.
    X16,
}

impl Bifurcation {
    /// Number of lanes.
    pub fn lanes(self) -> u32 {
        match self {
            Bifurcation::X4 => 4,
            Bifurcation::X8 => 8,
            Bifurcation::X16 => 16,
        }
    }
}

/// Physical-layer configuration of one Flex Bus link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysConfig {
    /// Per-lane transfer rate.
    pub speed: LinkSpeed,
    /// Lane count.
    pub width: Bifurcation,
    /// Flit framing mode (68 B for CXL 1.1/2.0, 256 B for CXL 3.x).
    pub flit_mode: FlitMode,
    /// One-way propagation delay of the physical medium (cable/trace plus
    /// SerDes latency).
    pub propagation: SimTime,
}

impl PhysConfig {
    /// A CXL 2.0-style x16 Gen5 link with 68 B flits, as on the Omega
    /// testbed the paper measures (Table 2).
    pub fn omega_like() -> Self {
        PhysConfig {
            speed: LinkSpeed::Gen5,
            width: Bifurcation::X16,
            flit_mode: FlitMode::Flit68,
            propagation: SimTime::from_ns(25.0),
        }
    }

    /// A CXL 3.0-style x16 Gen6 link with 256 B flits.
    pub fn cxl3_like() -> Self {
        PhysConfig {
            speed: LinkSpeed::Gen6,
            width: Bifurcation::X16,
            flit_mode: FlitMode::Flit256,
            propagation: SimTime::from_ns(25.0),
        }
    }

    /// Raw aggregate bandwidth in Gbit/s (before encoding overhead).
    pub fn raw_gbps(&self) -> f64 {
        self.speed.gt_per_s() * self.width.lanes() as f64
    }

    /// Usable bandwidth in Gbit/s after line-encoding overhead.
    pub fn effective_gbps(&self) -> f64 {
        self.raw_gbps() * self.speed.encoding_efficiency()
    }

    /// Time for one flit of the configured mode to serialize onto the wire.
    pub fn flit_serialization(&self) -> SimTime {
        fcc_sim::serialization_time(self.flit_mode.bytes(), self.effective_gbps())
    }

    /// Time for `bytes` of payload to serialize, accounting for flit
    /// framing: payload is carried in whole flits, each of which has a
    /// fixed header+CRC overhead.
    pub fn payload_serialization(&self, bytes: u64) -> SimTime {
        let per_flit = self.flit_mode.payload_bytes();
        let flits = bytes.div_ceil(per_flit).max(1);
        self.flit_serialization() * flits
    }

    /// One-way latency of a single flit: serialization plus propagation.
    pub fn flit_latency(&self) -> SimTime {
        self.flit_serialization() + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_math() {
        let cfg = PhysConfig::omega_like();
        assert!((cfg.raw_gbps() - 512.0).abs() < 1e-9);
        let eff = cfg.effective_gbps();
        assert!(eff > 500.0 && eff < 512.0);
    }

    #[test]
    fn gen6_x16_hits_one_twenty_eight_gbytes() {
        let cfg = PhysConfig::cxl3_like();
        // 64 GT/s x16 = 1024 Gbit/s raw = 128 GB/s.
        assert!((cfg.raw_gbps() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn flit_serialization_is_sub_microsecond() {
        let cfg = PhysConfig::omega_like();
        let t = cfg.flit_serialization();
        // 68 B at ~504 Gbit/s ≈ 1.08 ns.
        assert!(t.as_ns() > 0.9 && t.as_ns() < 1.3, "{t}");
    }

    #[test]
    fn payload_rounds_up_to_flits() {
        let cfg = PhysConfig::omega_like();
        let one = cfg.payload_serialization(1);
        let full = cfg.payload_serialization(cfg.flit_mode.payload_bytes());
        assert_eq!(one, full);
        let two = cfg.payload_serialization(cfg.flit_mode.payload_bytes() + 1);
        assert_eq!(two, full * 2);
    }

    #[test]
    fn narrower_links_are_slower() {
        let wide = PhysConfig::omega_like();
        let narrow = PhysConfig {
            width: Bifurcation::X4,
            ..wide
        };
        assert!(narrow.flit_serialization() > wide.flit_serialization());
        assert_eq!(narrow.raw_gbps(), wide.raw_gbps() / 4.0);
    }
}
