#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! CXL Flex Bus protocol model: flits, channels, and the three-layer stack.
//!
//! This crate contains the *protocol logic* of the memory fabric as pure,
//! engine-independent state machines, following the Flex Bus layering the
//! paper describes (§2.1):
//!
//! * [`phys`] — physical layer: link speeds (GT/s), x4/x8/x16 bifurcation,
//!   68 B / 256 B flit modes, and serialization timing.
//! * [`link`] — link layer: hop-by-hop credit-based flow control (credit
//!   update protocol with overcommitment), CRC-protected flits, and a
//!   go-back-N retry buffer for reliable transmission.
//! * [`channel`] — transaction layer: CXL.io / CXL.mem / CXL.cache channel
//!   semantics and their request/response opcodes.
//! * [`flit`] — the flit container moved across the wire.
//! * [`addr`] — host physical address maps and FAM interleaving.
//! * [`registry`] — Table 1 of the paper: the commodity memory fabrics.
//!
//! The event-driven wrappers that put these state machines on simulated
//! wires live in `fcc-fabric`.

pub mod addr;
pub mod channel;
pub mod crc;
pub mod flit;
pub mod link;
pub mod phys;
pub mod registry;

pub use addr::{AddrMap, AddrRange, InterleaveGranularity, NodeId};
pub use channel::{CacheOpcode, Channel, IoOpcode, MemOpcode, TransactionKind};
pub use flit::{Flit, FlitMode, FlitPayload};
pub use link::{CreditConfig, CreditCounter, LinkLayer, LinkLayerError, VirtualChannel};
pub use phys::{Bifurcation, LinkSpeed, PhysConfig};
