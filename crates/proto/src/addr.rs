//! Host physical address maps and fabric-attached memory interleaving.
//!
//! A composable infrastructure exposes FAM capacity into each host's
//! physical address space. The [`AddrMap`] decodes a host physical address
//! to the fabric node backing it, optionally interleaving a range across
//! several FAMs at a fixed granularity (CXL calls this an interleave set).

use serde::{Deserialize, Serialize};

/// Identifies a node (host, switch, FAM, FAA) on the fabric.
///
/// PBR addressing uses 12-bit IDs ("up to 4096 unique edge ports", §2.1);
/// [`NodeId::is_pbr_addressable`] checks that bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Maximum edge ports addressable by 12-bit PBR IDs.
    pub const PBR_LIMIT: u16 = 4096;

    /// Whether this id fits in a 12-bit PBR ID.
    pub fn is_pbr_addressable(self) -> bool {
        self.0 < Self::PBR_LIMIT
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interleave granularity for a multi-FAM range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterleaveGranularity {
    /// 256-byte interleave (CXL default for bandwidth spreading).
    B256,
    /// 4 KiB (page) interleave.
    K4,
    /// 2 MiB (huge page) interleave.
    M2,
}

impl InterleaveGranularity {
    /// Granularity in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            InterleaveGranularity::B256 => 256,
            InterleaveGranularity::K4 => 4096,
            InterleaveGranularity::M2 => 2 * 1024 * 1024,
        }
    }
}

/// A half-open physical address range `[base, base + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    /// First byte covered.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl AddrRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or wraps the address space.
    pub fn new(base: u64, len: u64) -> Self {
        assert!(len > 0, "empty range");
        assert!(base.checked_add(len).is_some(), "range wraps");
        AddrRange { base, len }
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.len
    }

    /// One past the last covered byte.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Region {
    range: AddrRange,
    targets: Vec<NodeId>,
    granularity: InterleaveGranularity,
}

/// Decodes host physical addresses to backing fabric nodes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AddrMap {
    regions: Vec<Region>,
}

/// Result of decoding an address: the backing node plus the device-local
/// offset within that node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The node backing the address.
    pub node: NodeId,
    /// Device physical address (offset within the node's contribution).
    pub dpa: u64,
}

impl AddrMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `range` to a single node.
    ///
    /// # Panics
    ///
    /// Panics if `range` overlaps an existing region.
    pub fn add_direct(&mut self, range: AddrRange, node: NodeId) {
        self.add_interleaved(range, vec![node], InterleaveGranularity::K4);
    }

    /// Maps `range` across `targets`, round-robin at `granularity`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty, `range.len` is not a multiple of
    /// `granularity × targets.len()`, or the range overlaps an existing
    /// region.
    pub fn add_interleaved(
        &mut self,
        range: AddrRange,
        targets: Vec<NodeId>,
        granularity: InterleaveGranularity,
    ) {
        assert!(!targets.is_empty(), "interleave set must be non-empty");
        let stripe = granularity.bytes() * targets.len() as u64;
        assert!(
            range.len.is_multiple_of(stripe),
            "range length {} not a multiple of stripe {stripe}",
            range.len
        );
        for r in &self.regions {
            assert!(!r.range.overlaps(&range), "overlapping address regions");
        }
        self.regions.push(Region {
            range,
            targets,
            granularity,
        });
    }

    /// Decodes `addr` to its backing node and device-local offset.
    pub fn decode(&self, addr: u64) -> Option<Decoded> {
        let region = self.regions.iter().find(|r| r.range.contains(addr))?;
        let offset = addr - region.range.base;
        let g = region.granularity.bytes();
        let n = region.targets.len() as u64;
        let chunk = offset / g;
        let which = (chunk % n) as usize;
        // DPA: collapse the interleave stripes this node participates in.
        let dpa = (chunk / n) * g + offset % g;
        Some(Decoded {
            node: region.targets[which],
            dpa,
        })
    }

    /// Total mapped capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.range.len).sum()
    }

    /// All nodes referenced by the map (with duplicates removed).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .regions
            .iter()
            .flat_map(|r| r.targets.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn pbr_limit() {
        assert!(NodeId(4095).is_pbr_addressable());
        assert!(!NodeId(4096).is_pbr_addressable());
    }

    #[test]
    fn direct_region_decodes_with_dpa() {
        let mut map = AddrMap::new();
        map.add_direct(AddrRange::new(0x1_0000, 0x1_0000), NodeId(7));
        let d = map.decode(0x1_8000).expect("mapped");
        assert_eq!(d.node, NodeId(7));
        assert_eq!(d.dpa, 0x8000);
        assert!(map.decode(0x0).is_none());
        assert!(map.decode(0x2_0000).is_none());
    }

    #[test]
    fn interleave_round_robins() {
        let mut map = AddrMap::new();
        let targets = vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        map.add_interleaved(
            AddrRange::new(0, 4096 * 4),
            targets.clone(),
            InterleaveGranularity::B256,
        );
        for chunk in 0..64u64 {
            let d = map.decode(chunk * 256).expect("mapped");
            assert_eq!(d.node, targets[(chunk % 4) as usize]);
            assert_eq!(d.dpa, (chunk / 4) * 256);
        }
    }

    #[test]
    fn capacity_splits_evenly_across_interleave_set() {
        let mut map = AddrMap::new();
        map.add_interleaved(
            AddrRange::new(0, 1 << 20),
            vec![NodeId(1), NodeId(2)],
            InterleaveGranularity::K4,
        );
        // Each node sees half the DPA space: max dpa < 512 KiB.
        let d = map.decode((1 << 20) - 1).expect("mapped");
        assert!(d.dpa < 1 << 19);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        let mut map = AddrMap::new();
        map.add_direct(AddrRange::new(0, 8192), NodeId(1));
        map.add_direct(AddrRange::new(4096, 8192), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_interleave_rejected() {
        let mut map = AddrMap::new();
        map.add_interleaved(
            AddrRange::new(0, 4096 + 256),
            vec![NodeId(1), NodeId(2)],
            InterleaveGranularity::K4,
        );
    }

    #[test]
    fn nodes_deduplicated() {
        let mut map = AddrMap::new();
        map.add_direct(AddrRange::new(0, 4096), NodeId(3));
        map.add_direct(AddrRange::new(4096, 4096), NodeId(3));
        map.add_direct(AddrRange::new(8192, 4096), NodeId(1));
        assert_eq!(map.nodes(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(map.total_bytes(), 3 * 4096);
    }

    proptest! {
        #[test]
        fn every_mapped_addr_decodes(addr in 0u64..(1 << 22)) {
            let mut map = AddrMap::new();
            map.add_interleaved(
                AddrRange::new(0, 1 << 22),
                vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
                InterleaveGranularity::B256,
            );
            let d = map.decode(addr).expect("in range");
            prop_assert!(d.node.0 >= 1 && d.node.0 <= 4);
            prop_assert!(d.dpa < (1 << 22) / 4);
        }

        #[test]
        fn dpa_is_injective_per_node(a in 0u64..(1 << 16), b in 0u64..(1 << 16)) {
            // Two distinct addresses mapping to the same node get distinct DPAs.
            let mut map = AddrMap::new();
            map.add_interleaved(
                AddrRange::new(0, 1 << 16),
                vec![NodeId(1), NodeId(2)],
                InterleaveGranularity::B256,
            );
            let da = map.decode(a).expect("in range");
            let db = map.decode(b).expect("in range");
            if a != b && da.node == db.node {
                prop_assert_ne!(da.dpa, db.dpa);
            }
        }
    }
}
