//! Link layer: credit-based flow control and reliable retransmission.
//!
//! The Flex Bus link layer "provides reliable transmission between two
//! endpoints using a hop-by-hop based credit-based flow control. Each entity
//! along the path allocates credits to downstream ports based on its buffer
//! capacity, uses a credit update protocol to track inflight flit
//! transmission, and runs an overcommitment scheme to improve bandwidth
//! utilization" (§2.1). This module implements exactly that, as a pure state
//! machine with separate TX and RX halves:
//!
//! * **Credits** are per message class ([`MsgClass`]), so responses can
//!   always drain past stalled requests.
//! * **Overcommitment**: the receiver advertises more credits per class
//!   than its shared physical buffer holds; when the pool genuinely fills,
//!   an arriving flit is refused with a NAK and recovered by the retry
//!   protocol.
//! * **Reliability**: sequenced flits are kept in a retry buffer until
//!   acked; CRC failures and overflow produce go-back-N retransmission.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::channel::MsgClass;
use crate::flit::{Flit, FlitMode, FlitPayload};

/// A virtual channel on a link or switch port.
///
/// VCs map 1:1 to credit classes at the link layer; switches may add
/// port-local VCs on top (see `fcc-fabric`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VirtualChannel(pub u8);

impl VirtualChannel {
    /// The VC carrying a given credit class.
    pub fn for_class(class: MsgClass) -> Self {
        VirtualChannel(class.index() as u8)
    }
}

/// Static credit configuration for one side of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CreditConfig {
    /// Physical receive-buffer capacity, in flits, shared by all classes.
    pub buffer_flits: u32,
    /// Overcommitment factor: each class is granted
    /// `buffer_flits * overcommit / 4` credits, so the advertised total is
    /// `buffer_flits * overcommit`. 1.0 disables overcommitment.
    pub overcommit: f64,
    /// Return freed credits to the peer once this many accumulate.
    pub return_threshold: u32,
    /// Maximum unacked flits the transmitter keeps (retry buffer depth).
    pub retry_depth: usize,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            buffer_flits: 64,
            overcommit: 1.0,
            return_threshold: 4,
            retry_depth: 256,
        }
    }
}

impl CreditConfig {
    /// Credits advertised per managed class.
    pub fn advertised_per_class(&self) -> u32 {
        let total = self.buffer_flits as f64 * self.overcommit;
        (total / MsgClass::MANAGED.len() as f64).floor().max(1.0) as u32
    }
}

/// Transmit-side credit counter for one class.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CreditCounter {
    available: u32,
    granted_total: u64,
    consumed_total: u64,
    stalled_attempts: u64,
}

impl CreditCounter {
    /// Credits currently available.
    pub fn available(&self) -> u32 {
        self.available
    }

    /// Lifetime credits granted by the peer (including the initial
    /// advertisement).
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// Lifetime credits consumed.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_total
    }

    /// Lifetime attempts refused for lack of credit.
    pub fn stalled_attempts(&self) -> u64 {
        self.stalled_attempts
    }

    /// Tries to consume one credit.
    pub fn try_consume(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            self.consumed_total += 1;
            true
        } else {
            self.stalled_attempts += 1;
            false
        }
    }

    /// Grants credits (from a peer credit update).
    pub fn grant(&mut self, n: u32) {
        let before = self.available;
        self.available = self.available.saturating_add(n);
        // Ledger counts what was actually added, so conservation holds
        // even if a buggy peer over-grants into saturation.
        self.granted_total += u64::from(self.available - before);
    }

    /// Credit conservation: every credit ever granted is either consumed
    /// or still available. A mismatch means credits were minted or
    /// destroyed outside [`CreditCounter::grant`]/[`CreditCounter::try_consume`].
    pub fn conserved(&self) -> bool {
        self.granted_total == self.consumed_total + u64::from(self.available)
    }
}

/// Errors surfaced by the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkLayerError {
    /// No transmit credit available for the class.
    NoCredit(MsgClass),
    /// The retry buffer is full; the transmitter must pause.
    RetryBufferFull,
}

impl std::fmt::Display for LinkLayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkLayerError::NoCredit(c) => write!(f, "no credit for class {c:?}"),
            LinkLayerError::RetryBufferFull => write!(f, "retry buffer full"),
        }
    }
}

impl std::error::Error for LinkLayerError {}

/// A violated credit-conservation equation, reported by
/// [`LinkLayer::audit`] or [`audit_drained_pair`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditLedgerError {
    /// The message class whose ledger is inconsistent.
    pub class: MsgClass,
    /// The conservation equation that failed, in symbolic form.
    pub equation: &'static str,
    /// Left-hand side of the equation as evaluated.
    pub lhs: u64,
    /// Right-hand side of the equation as evaluated.
    pub rhs: u64,
}

impl std::fmt::Display for CreditLedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "credit ledger violated for {:?}: {} ({} != {})",
            self.class, self.equation, self.lhs, self.rhs
        )
    }
}

impl std::error::Error for CreditLedgerError {}

/// What the receiver decided about an incoming flit.
#[derive(Debug, Clone, PartialEq)]
pub enum RxAction {
    /// Payload accepted and buffered; deliver to the transaction layer.
    Deliver(FlitPayload),
    /// Link-layer control processed internally; nothing to deliver.
    Control,
    /// Flit refused (CRC error, sequence gap, or buffer overflow); the
    /// caller must send the contained NAK payload back to the peer.
    Refused(FlitPayload),
    /// Duplicate of an already-delivered flit; drop silently.
    Duplicate,
}

/// One endpoint of a reliable, credit-flow-controlled link.
#[derive(Debug)]
pub struct LinkLayer {
    mode: FlitMode,
    config: CreditConfig,
    // TX state.
    next_seq: u64,
    retry: VecDeque<Flit>,
    tx_credits: [CreditCounter; 4],
    // RX state.
    expected_seq: u64,
    rx_pool_used: u32,
    rx_class_used: [u32; 4],
    pending_return: [u32; 4],
    delivered_since_ack: u32,
    nak_outstanding: bool,
    // Conservation ledger: lifetime flits accepted into the receive
    // buffer, drained out of it, and credits returned to the peer.
    accepted_total: [u64; 4],
    released_total: [u64; 4],
    returned_total: [u64; 4],
    // Stats.
    retransmissions: u64,
    crc_drops: u64,
    overflow_drops: u64,
}

impl LinkLayer {
    /// Creates a link endpoint. `peer_config` is the *receiver* config of
    /// the other side, which determines our initial transmit credits.
    pub fn new(mode: FlitMode, config: CreditConfig, peer_config: CreditConfig) -> Self {
        let mut tx_credits: [CreditCounter; 4] = Default::default();
        for c in &mut tx_credits {
            c.grant(peer_config.advertised_per_class());
        }
        LinkLayer {
            mode,
            config,
            next_seq: 0,
            retry: VecDeque::new(),
            tx_credits,
            expected_seq: 0,
            rx_pool_used: 0,
            rx_class_used: [0; 4],
            pending_return: [0; 4],
            delivered_since_ack: 0,
            nak_outstanding: false,
            accepted_total: [0; 4],
            released_total: [0; 4],
            returned_total: [0; 4],
            retransmissions: 0,
            crc_drops: 0,
            overflow_drops: 0,
        }
    }

    /// Creates a symmetric link endpoint (both sides share one config).
    pub fn symmetric(mode: FlitMode, config: CreditConfig) -> Self {
        Self::new(mode, config, config)
    }

    /// The flit mode in use.
    pub fn mode(&self) -> FlitMode {
        self.mode
    }

    /// Transmit credit state for a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is `Ctrl` (control is uncredited).
    pub fn tx_credits(&self, class: MsgClass) -> &CreditCounter {
        assert!(class != MsgClass::Ctrl, "control flits are uncredited");
        &self.tx_credits[class.index()]
    }

    /// Whether a payload of `class` could be sent right now.
    pub fn can_send(&self, class: MsgClass) -> bool {
        if class == MsgClass::Ctrl {
            return true;
        }
        self.tx_credits[class.index()].available() > 0 && self.retry.len() < self.config.retry_depth
    }

    /// Frames and sequences a payload, consuming a credit.
    ///
    /// Control payloads bypass credits and the retry buffer.
    pub fn send(&mut self, payload: FlitPayload) -> Result<Flit, LinkLayerError> {
        let class = payload.msg_class();
        if class == MsgClass::Ctrl {
            return Ok(Flit::new(0, self.mode, payload));
        }
        if self.retry.len() >= self.config.retry_depth {
            return Err(LinkLayerError::RetryBufferFull);
        }
        if !self.tx_credits[class.index()].try_consume() {
            return Err(LinkLayerError::NoCredit(class));
        }
        let flit = Flit::new(self.next_seq, self.mode, payload);
        self.next_seq += 1;
        self.retry.push_back(flit.clone());
        Ok(flit)
    }

    /// Processes an incoming flit.
    pub fn receive(&mut self, flit: Flit) -> RxAction {
        if !flit.crc_ok() {
            self.crc_drops += 1;
            return self.refuse(true);
        }
        // Control flits are unsequenced: handle immediately.
        match &flit.payload {
            FlitPayload::CreditUpdate { class, credits } => {
                self.tx_credits[class.index()].grant(*credits);
                return RxAction::Control;
            }
            FlitPayload::Ack { seq } => {
                self.process_ack(*seq);
                return RxAction::Control;
            }
            FlitPayload::Nak { .. } | FlitPayload::Idle | FlitPayload::VcCredit { .. } => {
                // NAK retransmission is driven by the caller via
                // [`LinkLayer::on_nak`] because it needs the flits back.
                return RxAction::Control;
            }
            _ => {}
        }
        // Sequenced data path.
        if flit.seq < self.expected_seq {
            return RxAction::Duplicate;
        }
        if flit.seq > self.expected_seq {
            // Gap: an earlier flit was dropped. Go-back-N; NAKs for the
            // trailing flits of the same loss burst are suppressed.
            return self.refuse(false);
        }
        if self.rx_pool_used >= self.config.buffer_flits {
            // Overcommitted pool genuinely full.
            self.overflow_drops += 1;
            return self.refuse(true);
        }
        let class = flit.payload.msg_class();
        self.expected_seq += 1;
        self.rx_pool_used += 1;
        self.rx_class_used[class.index()] += 1;
        self.accepted_total[class.index()] += 1;
        self.delivered_since_ack += 1;
        self.nak_outstanding = false;
        debug_assert!(self.audit().is_ok(), "{:?}", self.audit());
        RxAction::Deliver(flit.payload)
    }

    /// `hard` refusals (CRC error, buffer overflow) always NAK so repeated
    /// corruption cannot stall the link; soft refusals (sequence gaps that
    /// trail an already-NAKed loss) are coalesced into the first NAK.
    fn refuse(&mut self, hard: bool) -> RxAction {
        if self.nak_outstanding && !hard {
            return RxAction::Duplicate;
        }
        self.nak_outstanding = true;
        RxAction::Refused(FlitPayload::Nak {
            from_seq: self.expected_seq,
        })
    }

    fn process_ack(&mut self, seq: u64) {
        while let Some(front) = self.retry.front() {
            if front.seq <= seq {
                self.retry.pop_front();
            } else {
                break;
            }
        }
    }

    /// Handles a NAK from the peer: returns the flits to retransmit, in
    /// order, starting at `from_seq` (go-back-N).
    pub fn on_nak(&mut self, from_seq: u64) -> Vec<Flit> {
        let out: Vec<Flit> = self
            .retry
            .iter()
            .filter(|f| f.seq >= from_seq)
            .cloned()
            .collect();
        self.retransmissions += out.len() as u64;
        out
    }

    /// Acknowledgment the receiver owes the peer, if any (ack coalescing:
    /// one ack per `return_threshold` delivered flits).
    pub fn take_ack(&mut self) -> Option<FlitPayload> {
        if self.delivered_since_ack >= self.config.return_threshold && self.expected_seq > 0 {
            self.delivered_since_ack = 0;
            Some(FlitPayload::Ack {
                seq: self.expected_seq - 1,
            })
        } else {
            None
        }
    }

    /// Forces out any pending acknowledgment (e.g. on an idle timer).
    pub fn flush_ack(&mut self) -> Option<FlitPayload> {
        if self.delivered_since_ack > 0 && self.expected_seq > 0 {
            self.delivered_since_ack = 0;
            Some(FlitPayload::Ack {
                seq: self.expected_seq - 1,
            })
        } else {
            None
        }
    }

    /// Marks one buffered message of `class` as drained from the receive
    /// buffer, freeing a credit for eventual return to the peer.
    ///
    /// # Panics
    ///
    /// Panics if no message of that class is buffered.
    pub fn release(&mut self, class: MsgClass) {
        let idx = class.index();
        assert!(self.rx_class_used[idx] > 0, "release without occupancy");
        self.rx_class_used[idx] -= 1;
        self.rx_pool_used -= 1;
        self.pending_return[idx] += 1;
        self.released_total[idx] += 1;
        debug_assert!(self.audit().is_ok(), "{:?}", self.audit());
    }

    /// Credit update the receiver owes the peer, if the return threshold
    /// has been met for any class.
    pub fn take_credit_update(&mut self) -> Option<FlitPayload> {
        for class in MsgClass::MANAGED {
            let idx = class.index();
            if self.pending_return[idx] >= self.config.return_threshold {
                let credits = self.pending_return[idx];
                self.pending_return[idx] = 0;
                self.returned_total[idx] += u64::from(credits);
                return Some(FlitPayload::CreditUpdate { class, credits });
            }
        }
        None
    }

    /// Forces out all pending credit returns (idle timer path).
    pub fn flush_credit_updates(&mut self) -> Vec<FlitPayload> {
        let mut out = Vec::new();
        for class in MsgClass::MANAGED {
            let idx = class.index();
            if self.pending_return[idx] > 0 {
                out.push(FlitPayload::CreditUpdate {
                    class,
                    credits: self.pending_return[idx],
                });
                self.returned_total[idx] += u64::from(self.pending_return[idx]);
                self.pending_return[idx] = 0;
            }
        }
        out
    }

    /// Unacked flits currently held for retransmission.
    pub fn retry_occupancy(&self) -> usize {
        self.retry.len()
    }

    /// Lifetime retransmitted flits.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Lifetime CRC-failed receives.
    pub fn crc_drops(&self) -> u64 {
        self.crc_drops
    }

    /// Lifetime receives refused because the overcommitted pool was full.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }

    /// Current receive-pool occupancy in flits.
    pub fn rx_occupancy(&self) -> u32 {
        self.rx_pool_used
    }

    /// Lifetime flits accepted into the receive buffer for a class.
    pub fn accepted_total(&self, class: MsgClass) -> u64 {
        self.accepted_total[class.index()]
    }

    /// Lifetime flits drained from the receive buffer for a class.
    pub fn released_total(&self, class: MsgClass) -> u64 {
        self.released_total[class.index()]
    }

    /// Lifetime credits returned to the peer for a class.
    pub fn returned_total(&self, class: MsgClass) -> u64 {
        self.returned_total[class.index()]
    }

    /// Checks every credit-conservation equation this endpoint can verify
    /// locally, returning the first violated one.
    ///
    /// For each managed class:
    ///
    /// * `granted == consumed + available` — the TX counter neither mints
    ///   nor destroys credits ([`CreditCounter::conserved`]);
    /// * `accepted - released == rx_class_used` — every buffered flit is
    ///   accounted for until drained;
    /// * `released - returned == pending_return` — every drained flit's
    ///   credit is either already returned or queued for return;
    /// * and across classes, `sum(rx_class_used) == rx_pool_used` — the
    ///   shared pool occupancy matches the per-class ledgers.
    pub fn audit(&self) -> Result<(), CreditLedgerError> {
        for class in MsgClass::MANAGED {
            let idx = class.index();
            let tx = &self.tx_credits[idx];
            if !tx.conserved() {
                return Err(CreditLedgerError {
                    class,
                    equation: "granted == consumed + available",
                    lhs: tx.granted_total(),
                    rhs: tx.consumed_total() + u64::from(tx.available()),
                });
            }
            let buffered = self.accepted_total[idx] - self.released_total[idx];
            if buffered != u64::from(self.rx_class_used[idx]) {
                return Err(CreditLedgerError {
                    class,
                    equation: "accepted - released == rx_class_used",
                    lhs: buffered,
                    rhs: u64::from(self.rx_class_used[idx]),
                });
            }
            let owed = self.released_total[idx] - self.returned_total[idx];
            if owed != u64::from(self.pending_return[idx]) {
                return Err(CreditLedgerError {
                    class,
                    equation: "released - returned == pending_return",
                    lhs: owed,
                    rhs: u64::from(self.pending_return[idx]),
                });
            }
        }
        let class_sum: u32 = self.rx_class_used.iter().sum();
        if class_sum != self.rx_pool_used {
            return Err(CreditLedgerError {
                class: MsgClass::Req,
                equation: "sum(rx_class_used) == rx_pool_used",
                lhs: u64::from(class_sum),
                rhs: u64::from(self.rx_pool_used),
            });
        }
        Ok(())
    }
}

/// Leak check across a fully drained link pair: once `rx` has been drained
/// (every delivered flit [`LinkLayer::release`]d) and all credit updates
/// flushed back into `tx`, every advertised credit must be back in `tx`'s
/// counter — none held by buffered flits, none stranded in
/// `pending_return`, none lost in flight.
///
/// Call only at quiescence (no flits or credit updates still on the wire);
/// mid-flight the in-transit credits legitimately make the sum fall short.
pub fn audit_drained_pair(tx: &LinkLayer, rx: &LinkLayer) -> Result<(), CreditLedgerError> {
    tx.audit()?;
    rx.audit()?;
    // tx's credits were advertised from rx's receive config.
    let advertised = u64::from(rx.config.advertised_per_class());
    for class in MsgClass::MANAGED {
        let idx = class.index();
        let located = u64::from(tx.tx_credits[idx].available())
            + u64::from(rx.rx_class_used[idx])
            + u64::from(rx.pending_return[idx]);
        if located != advertised {
            return Err(CreditLedgerError {
                class,
                equation: "available + rx_buffered + pending_return == advertised",
                lhs: located,
                rhs: advertised,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::addr::NodeId;
    use crate::channel::{MemOpcode, Transaction, TransactionKind};

    fn txn(id: u64) -> FlitPayload {
        FlitPayload::Transaction(Transaction {
            id,
            kind: TransactionKind::Mem(MemOpcode::MemRd),
            addr: id * 64,
            bytes: 0,
            src: NodeId(0),
            dst: NodeId(1),
        })
    }

    fn pair() -> (LinkLayer, LinkLayer) {
        let cfg = CreditConfig::default();
        (
            LinkLayer::symmetric(FlitMode::Flit68, cfg),
            LinkLayer::symmetric(FlitMode::Flit68, cfg),
        )
    }

    #[test]
    fn normal_flow_delivers_in_order() {
        let (mut tx, mut rx) = pair();
        for i in 0..10 {
            let flit = tx.send(txn(i)).expect("send");
            match rx.receive(flit) {
                RxAction::Deliver(FlitPayload::Transaction(t)) => assert_eq!(t.id, i),
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert_eq!(rx.rx_occupancy(), 10);
    }

    #[test]
    fn credits_exhaust_and_replenish() {
        let cfg = CreditConfig {
            buffer_flits: 8,
            overcommit: 1.0,
            return_threshold: 2,
            retry_depth: 64,
        };
        let mut tx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        let mut rx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        // 8 flits / 4 classes = 2 credits per class.
        assert_eq!(cfg.advertised_per_class(), 2);
        let f1 = tx.send(txn(0)).expect("first");
        let f2 = tx.send(txn(1)).expect("second");
        assert_eq!(
            tx.send(txn(2)).expect_err("exhausted"),
            LinkLayerError::NoCredit(MsgClass::Req)
        );
        assert!(matches!(rx.receive(f1), RxAction::Deliver(_)));
        assert!(matches!(rx.receive(f2), RxAction::Deliver(_)));
        // Drain the receiver, triggering a credit return.
        rx.release(MsgClass::Req);
        assert!(rx.take_credit_update().is_none(), "below threshold");
        rx.release(MsgClass::Req);
        let update = rx.take_credit_update().expect("threshold met");
        let update_flit = rx.send(update).expect("control is uncredited");
        assert!(matches!(tx.receive(update_flit), RxAction::Control));
        assert!(tx.can_send(MsgClass::Req));
        tx.send(txn(2)).expect("replenished");
    }

    #[test]
    fn crc_corruption_triggers_go_back_n() {
        let (mut tx, mut rx) = pair();
        let f0 = tx.send(txn(0)).expect("send");
        let mut f1 = tx.send(txn(1)).expect("send");
        let f2 = tx.send(txn(2)).expect("send");
        assert!(matches!(rx.receive(f0), RxAction::Deliver(_)));
        f1.corrupt();
        let nak = match rx.receive(f1) {
            RxAction::Refused(n) => n,
            other => panic!("expected refusal, got {other:?}"),
        };
        assert_eq!(nak, FlitPayload::Nak { from_seq: 1 });
        // Subsequent flit hits the sequence gap; NAK suppressed.
        assert_eq!(rx.receive(f2), RxAction::Duplicate);
        // Transmitter retransmits from seq 1.
        let resend = tx.on_nak(1);
        assert_eq!(resend.len(), 2);
        assert_eq!(tx.retransmissions(), 2);
        for f in resend {
            assert!(matches!(rx.receive(f), RxAction::Deliver(_)));
        }
        assert_eq!(rx.rx_occupancy(), 3);
    }

    #[test]
    fn ack_prunes_retry_buffer() {
        let (mut tx, mut rx) = pair();
        for i in 0..4 {
            let f = tx.send(txn(i)).expect("send");
            rx.receive(f);
        }
        assert_eq!(tx.retry_occupancy(), 4);
        let ack = rx.take_ack().expect("threshold (4) met");
        let ack_flit = rx.send(ack).expect("ctrl");
        tx.receive(ack_flit);
        assert_eq!(tx.retry_occupancy(), 0);
    }

    #[test]
    fn overcommit_advertises_more_than_pool() {
        let cfg = CreditConfig {
            buffer_flits: 8,
            overcommit: 2.0,
            return_threshold: 4,
            retry_depth: 64,
        };
        // 8 * 2.0 / 4 classes = 4 credits per class, 16 advertised > 8 pool.
        assert_eq!(cfg.advertised_per_class(), 4);
        let mut tx = LinkLayer::new(FlitMode::Flit68, cfg, cfg);
        let mut rx = LinkLayer::new(FlitMode::Flit68, cfg, cfg);
        // Send 4 Req + 4 RwD + 1 more Req: the 9th fills past the pool.
        let mut flits = Vec::new();
        for i in 0..4u64 {
            flits.push(tx.send(txn(i)).expect("req"));
        }
        for i in 0..4u64 {
            let wr = FlitPayload::Transaction(Transaction {
                id: 100 + i,
                kind: TransactionKind::Mem(MemOpcode::MemWr),
                addr: i * 64,
                bytes: 64,
                src: NodeId(0),
                dst: NodeId(1),
            });
            flits.push(tx.send(wr).expect("rwd"));
        }
        // One more data response class message to overflow the pool of 8.
        let extra = FlitPayload::Transaction(Transaction {
            id: 999,
            kind: TransactionKind::Mem(MemOpcode::MemData),
            addr: 0,
            bytes: 64,
            src: NodeId(0),
            dst: NodeId(1),
        });
        flits.push(tx.send(extra).expect("drs credit exists"));
        let mut delivered = 0;
        let mut refused = 0;
        for f in flits {
            match rx.receive(f) {
                RxAction::Deliver(_) => delivered += 1,
                RxAction::Refused(_) => refused += 1,
                _ => {}
            }
        }
        assert_eq!(delivered, 8, "pool capacity");
        assert_eq!(refused, 1, "overcommitted overflow NAKed");
        assert_eq!(rx.overflow_drops(), 1);
    }

    #[test]
    fn ledger_balances_through_flow_and_drain() {
        let cfg = CreditConfig {
            buffer_flits: 8,
            overcommit: 1.0,
            return_threshold: 1,
            retry_depth: 64,
        };
        let mut tx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        let mut rx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        for i in 0..2u64 {
            let f = tx.send(txn(i)).expect("credit");
            assert!(matches!(rx.receive(f), RxAction::Deliver(_)));
        }
        tx.audit().expect("tx ledger mid-flow");
        rx.audit().expect("rx ledger mid-flow");
        assert_eq!(rx.accepted_total(MsgClass::Req), 2);
        // Drain the receiver and walk every credit back to the sender.
        for _ in 0..2 {
            rx.release(MsgClass::Req);
            let update = rx.take_credit_update().expect("threshold 1");
            let uf = rx.send(update).expect("control is uncredited");
            assert!(matches!(tx.receive(uf), RxAction::Control));
        }
        assert_eq!(rx.released_total(MsgClass::Req), 2);
        assert_eq!(rx.returned_total(MsgClass::Req), 2);
        audit_drained_pair(&tx, &rx).expect("no leaked credits");
    }

    #[test]
    fn lost_credit_update_is_reported_as_a_leak_at_drain() {
        let cfg = CreditConfig {
            buffer_flits: 8,
            overcommit: 1.0,
            return_threshold: 1,
            retry_depth: 64,
        };
        let mut tx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        let mut rx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        let f = tx.send(txn(0)).expect("credit");
        assert!(matches!(rx.receive(f), RxAction::Deliver(_)));
        rx.release(MsgClass::Req);
        // The credit update falls on the floor instead of reaching tx.
        let _lost = rx.take_credit_update().expect("threshold 1");
        // Each endpoint is locally consistent...
        tx.audit().expect("tx ledger");
        rx.audit().expect("rx ledger");
        // ...but the pair has lost a credit, which the drain check catches.
        let err = audit_drained_pair(&tx, &rx).expect_err("leak");
        assert_eq!(err.class, MsgClass::Req);
        assert_eq!(
            err.equation,
            "available + rx_buffered + pending_return == advertised"
        );
        assert_eq!(err.lhs + 1, err.rhs);
    }

    #[test]
    fn duplicate_flits_are_dropped() {
        let (mut tx, mut rx) = pair();
        let f = tx.send(txn(0)).expect("send");
        assert!(matches!(rx.receive(f.clone()), RxAction::Deliver(_)));
        assert_eq!(rx.receive(f), RxAction::Duplicate);
    }

    #[test]
    fn retry_buffer_full_blocks_sender() {
        let cfg = CreditConfig {
            buffer_flits: 1024,
            overcommit: 1.0,
            return_threshold: 4,
            retry_depth: 3,
        };
        let mut tx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
        for i in 0..3 {
            tx.send(txn(i)).expect("fits");
        }
        assert_eq!(
            tx.send(txn(3)).expect_err("full"),
            LinkLayerError::RetryBufferFull
        );
        assert!(!tx.can_send(MsgClass::Req));
    }

    proptest! {
        #[test]
        fn lossy_link_eventually_delivers_everything(
            n in 1usize..60,
            drop_pattern in prop::collection::vec(any::<bool>(), 60),
        ) {
            // Send n transactions over a link where drop_pattern[i] corrupts
            // the i-th wire crossing; retransmit on NAK until all delivered.
            let cfg = CreditConfig {
                buffer_flits: 256,
                overcommit: 1.0,
                return_threshold: 1,
                retry_depth: 256,
            };
            let mut tx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
            let mut rx = LinkLayer::symmetric(FlitMode::Flit68, cfg);
            let mut wire: Vec<Flit> = Vec::new();
            for i in 0..n as u64 {
                wire.push(tx.send(txn(i)).expect("credit"));
            }
            let mut delivered: Vec<u64> = Vec::new();
            let mut crossings = 0usize;
            while !wire.is_empty() {
                let mut next_wire = Vec::new();
                for mut f in wire {
                    let corrupt = drop_pattern.get(crossings).copied().unwrap_or(false)
                        && crossings < 40; // guarantee eventual success
                    crossings += 1;
                    if corrupt {
                        f.corrupt();
                    }
                    match rx.receive(f) {
                        RxAction::Deliver(FlitPayload::Transaction(t)) => delivered.push(t.id),
                        RxAction::Refused(FlitPayload::Nak { from_seq }) => {
                            next_wire = tx.on_nak(from_seq);
                            break;
                        }
                        _ => {}
                    }
                }
                wire = next_wire;
            }
            prop_assert_eq!(delivered.len(), n);
            let expect: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(delivered, expect, "in-order exactly-once delivery");
        }
    }
}
