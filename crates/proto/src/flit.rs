//! Flits: the unit of transfer on a Flex Bus link.
//!
//! The physical layer "supports both 68B and 256B flit modes" (§2.1). A
//! flit carries either transaction-layer content (a header, possibly with a
//! data slot) or link-layer control (credit updates, acks/naks for the
//! retry protocol). Flits are CRC-protected; the link layer recomputes the
//! CRC on receive and requests retransmission on mismatch.

use serde::{Deserialize, Serialize};

use crate::channel::{MsgClass, Transaction, TransactionKind};
use crate::crc::{crc16, crc32};

/// Flit framing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitMode {
    /// 68-byte flits (CXL 1.1/2.0): 64 B of slots + 2 B CRC + 2 B header.
    Flit68,
    /// 256-byte flits (CXL 3.x): 238 B usable + FEC/CRC overhead.
    Flit256,
}

impl FlitMode {
    /// Total wire footprint of one flit.
    pub fn bytes(self) -> u64 {
        match self {
            FlitMode::Flit68 => 68,
            FlitMode::Flit256 => 256,
        }
    }

    /// Payload bytes available to the transaction layer per flit.
    pub fn payload_bytes(self) -> u64 {
        match self {
            FlitMode::Flit68 => 64,
            FlitMode::Flit256 => 238,
        }
    }
}

/// What a flit carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlitPayload {
    /// A transaction-layer message (header slot; small payloads inline).
    Transaction(Transaction),
    /// A continuation data slot for a multi-flit transfer. Data slots are
    /// routed independently through the fabric, so they carry endpoints.
    Data {
        /// Transaction this slot belongs to.
        txn_id: u64,
        /// Zero-based slot index within the transfer.
        slot: u32,
        /// Originating fabric node.
        src: crate::addr::NodeId,
        /// Destination fabric node.
        dst: crate::addr::NodeId,
    },
    /// Link-layer credit update: grants `credits` to the peer for `class`.
    CreditUpdate {
        /// Credit class being replenished.
        class: MsgClass,
        /// Number of flit credits granted.
        credits: u32,
    },
    /// Link-layer acknowledgment of everything up to and including `seq`.
    Ack {
        /// Highest in-order sequence number received.
        seq: u64,
    },
    /// Link-layer negative ack: go-back-N retransmit from `from_seq`.
    Nak {
        /// First sequence number to retransmit.
        from_seq: u64,
    },
    /// Per-virtual-channel credit return for wormhole switching: grants
    /// `credits` flit slots back to the upstream switch for lane `vc`.
    /// Uncredited link control, like [`FlitPayload::CreditUpdate`], but
    /// scoped to one virtual channel of the switch-to-switch link rather
    /// than a message class of the link layer.
    VcCredit {
        /// Virtual channel (lane) being replenished.
        vc: u8,
        /// Number of flit credits granted.
        credits: u32,
    },
    /// Idle/keepalive flit.
    Idle,
}

impl FlitPayload {
    /// The credit class this payload consumes on the wire.
    pub fn msg_class(&self) -> MsgClass {
        match self {
            FlitPayload::Transaction(t) => t.kind.msg_class(),
            FlitPayload::Data { .. } => MsgClass::Drs,
            _ => MsgClass::Ctrl,
        }
    }

    /// Whether this is link-layer control (never consumes credits).
    pub fn is_control(&self) -> bool {
        matches!(self.msg_class(), MsgClass::Ctrl)
    }

    /// The causal trace id this payload belongs to: transaction headers
    /// and data slots carry their fabric-unique transaction id; link
    /// control carries none. Telemetry keys per-hop spans on this, so a
    /// flit's journey is reconstructible without widening the wire format.
    pub fn trace_id(&self) -> u64 {
        match self {
            FlitPayload::Transaction(t) => t.id,
            FlitPayload::Data { txn_id, .. } => *txn_id,
            _ => 0,
        }
    }

    /// The causal trace context for telemetry spans ([`Self::trace_id`]
    /// wrapped; untracked for link control).
    pub fn trace_ctx(&self) -> fcc_telemetry::TraceCtx {
        fcc_telemetry::TraceCtx::new(self.trace_id())
    }
}

/// One flit: sequence number, payload, and CRC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    /// Link-layer sequence number (control flits use 0 and are unsequenced).
    pub seq: u64,
    /// Framing mode this flit was emitted under.
    pub mode: FlitMode,
    /// Carried content.
    pub payload: FlitPayload,
    /// CRC over the serialized payload (16-bit stored zero-extended for
    /// 68 B flits, full 32-bit for 256 B flits).
    pub crc: u32,
}

impl Flit {
    /// Builds a flit, computing the CRC over the payload encoding.
    pub fn new(seq: u64, mode: FlitMode, payload: FlitPayload) -> Self {
        let crc = Self::compute_crc(seq, mode, &payload);
        Flit {
            seq,
            mode,
            payload,
            crc,
        }
    }

    /// Longest structural encoding: seq(8) + variant tag(1) + the widest
    /// payload (a `Transaction`: id 8 + kind 2 + addr 8 + bytes 4 +
    /// src/dst 2×2 = 26 B).
    const ENCODE_MAX: usize = 8 + 1 + 26;

    fn encode(seq: u64, payload: &FlitPayload, buf: &mut [u8; Self::ENCODE_MAX]) -> usize {
        // A compact, stable, injective encoding for CRC purposes: seq, a
        // payload variant tag, then every payload field as fixed-width
        // little-endian integers (enum opcodes as discriminant bytes).
        // Not a wire format — the simulator never parses it back — but any
        // payload or seq mutation changes it. Stack-buffer structural
        // encoding keeps CRC computation off the allocator: it runs twice
        // per flit per hop (emit + receive check) on the hot path.
        let mut n = 0;
        let mut put = |bytes: &[u8]| {
            buf[n..n + bytes.len()].copy_from_slice(bytes);
            n += bytes.len();
        };
        put(&seq.to_le_bytes());
        match payload {
            FlitPayload::Transaction(t) => {
                put(&[0]);
                put(&t.id.to_le_bytes());
                let (chan, op) = match t.kind {
                    TransactionKind::Mem(op) => (0u8, op as u8),
                    TransactionKind::Cache(op) => (1, op as u8),
                    TransactionKind::Io(op) => (2, op as u8),
                };
                put(&[chan, op]);
                put(&t.addr.to_le_bytes());
                put(&t.bytes.to_le_bytes());
                put(&t.src.0.to_le_bytes());
                put(&t.dst.0.to_le_bytes());
            }
            FlitPayload::Data {
                txn_id,
                slot,
                src,
                dst,
            } => {
                put(&[1]);
                put(&txn_id.to_le_bytes());
                put(&slot.to_le_bytes());
                put(&src.0.to_le_bytes());
                put(&dst.0.to_le_bytes());
            }
            FlitPayload::CreditUpdate { class, credits } => {
                put(&[2, class.index() as u8]);
                put(&credits.to_le_bytes());
            }
            FlitPayload::Ack { seq } => {
                put(&[3]);
                put(&seq.to_le_bytes());
            }
            FlitPayload::Nak { from_seq } => {
                put(&[4]);
                put(&from_seq.to_le_bytes());
            }
            FlitPayload::Idle => put(&[5]),
            FlitPayload::VcCredit { vc, credits } => {
                put(&[6, *vc]);
                put(&credits.to_le_bytes());
            }
        }
        n
    }

    fn compute_crc(seq: u64, mode: FlitMode, payload: &FlitPayload) -> u32 {
        let mut buf = [0u8; Self::ENCODE_MAX];
        let n = Self::encode(seq, payload, &mut buf);
        match mode {
            FlitMode::Flit68 => crc16(&buf[..n]) as u32,
            FlitMode::Flit256 => crc32(&buf[..n]),
        }
    }

    /// Recomputes the CRC and compares against the stored value.
    pub fn crc_ok(&self) -> bool {
        Self::compute_crc(self.seq, self.mode, &self.payload) == self.crc
    }

    /// Corrupts the stored CRC (fault injection for retry-path tests).
    pub fn corrupt(&mut self) {
        self.crc ^= 0x5A5A;
    }

    /// Wire footprint of this flit.
    pub fn wire_bytes(&self) -> u64 {
        self.mode.bytes()
    }
}

/// Number of flits needed to move `payload_bytes` of data plus one header
/// slot in the given mode.
pub fn flits_for_transfer(mode: FlitMode, payload_bytes: u64) -> u64 {
    if payload_bytes == 0 {
        return 1;
    }
    payload_bytes.div_ceil(mode.payload_bytes()).max(1)
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::addr::NodeId;
    use crate::channel::{MemOpcode, TransactionKind};

    fn sample_txn() -> Transaction {
        Transaction {
            id: 1,
            kind: TransactionKind::Mem(MemOpcode::MemRd),
            addr: 0xdead_beef,
            bytes: 0,
            src: NodeId(0),
            dst: NodeId(3),
        }
    }

    #[test]
    fn fresh_flit_passes_crc() {
        let f = Flit::new(5, FlitMode::Flit68, FlitPayload::Transaction(sample_txn()));
        assert!(f.crc_ok());
        assert_eq!(f.wire_bytes(), 68);
    }

    #[test]
    fn corruption_fails_crc() {
        let mut f = Flit::new(5, FlitMode::Flit256, FlitPayload::Idle);
        assert!(f.crc_ok());
        f.corrupt();
        assert!(!f.crc_ok());
    }

    #[test]
    fn payload_mutation_fails_crc() {
        let mut f = Flit::new(5, FlitMode::Flit68, FlitPayload::Ack { seq: 10 });
        f.payload = FlitPayload::Ack { seq: 11 };
        assert!(!f.crc_ok());
    }

    #[test]
    fn every_payload_field_is_covered_by_the_encoding() {
        // Mutating any single field of any variant must change the CRC.
        let base_txn = sample_txn();
        let variants: Vec<FlitPayload> = vec![
            FlitPayload::Transaction(base_txn.clone()),
            FlitPayload::Transaction(Transaction {
                id: 2,
                ..base_txn.clone()
            }),
            FlitPayload::Transaction(Transaction {
                kind: TransactionKind::Mem(MemOpcode::MemWr),
                ..base_txn.clone()
            }),
            FlitPayload::Transaction(Transaction {
                addr: 0xdead_bee0,
                ..base_txn.clone()
            }),
            FlitPayload::Transaction(Transaction {
                bytes: 64,
                ..base_txn.clone()
            }),
            FlitPayload::Transaction(Transaction {
                src: NodeId(1),
                ..base_txn.clone()
            }),
            FlitPayload::Transaction(Transaction {
                dst: NodeId(4),
                ..base_txn
            }),
            FlitPayload::Data {
                txn_id: 1,
                slot: 0,
                src: NodeId(0),
                dst: NodeId(3),
            },
            FlitPayload::Data {
                txn_id: 1,
                slot: 1,
                src: NodeId(0),
                dst: NodeId(3),
            },
            FlitPayload::Data {
                txn_id: 1,
                slot: 0,
                src: NodeId(2),
                dst: NodeId(3),
            },
            FlitPayload::Data {
                txn_id: 1,
                slot: 0,
                src: NodeId(0),
                dst: NodeId(5),
            },
            FlitPayload::CreditUpdate {
                class: MsgClass::Req,
                credits: 4,
            },
            FlitPayload::CreditUpdate {
                class: MsgClass::Drs,
                credits: 4,
            },
            FlitPayload::CreditUpdate {
                class: MsgClass::Req,
                credits: 5,
            },
            FlitPayload::Ack { seq: 10 },
            FlitPayload::Nak { from_seq: 10 },
            FlitPayload::Idle,
            FlitPayload::VcCredit { vc: 0, credits: 1 },
            FlitPayload::VcCredit { vc: 1, credits: 1 },
            FlitPayload::VcCredit { vc: 0, credits: 2 },
        ];
        let mut crcs: Vec<u32> = variants
            .into_iter()
            .map(|p| Flit::new(7, FlitMode::Flit256, p).crc)
            .collect();
        let before = crcs.len();
        crcs.sort_unstable();
        crcs.dedup();
        assert_eq!(crcs.len(), before, "all distinct payloads hash distinctly");
    }

    #[test]
    fn control_payloads_are_creditless() {
        assert!(FlitPayload::Ack { seq: 0 }.is_control());
        assert!(FlitPayload::Idle.is_control());
        assert!(FlitPayload::CreditUpdate {
            class: MsgClass::Req,
            credits: 4
        }
        .is_control());
        assert!(FlitPayload::VcCredit { vc: 1, credits: 1 }.is_control());
        assert!(!FlitPayload::Transaction(sample_txn()).is_control());
    }

    #[test]
    fn transfer_flit_counts() {
        // A 64 B cacheline fits one 68 B flit's data slots.
        assert_eq!(flits_for_transfer(FlitMode::Flit68, 64), 1);
        // 16 KiB in 68 B flits: 16384 / 64 = 256 flits.
        assert_eq!(flits_for_transfer(FlitMode::Flit68, 16384), 256);
        // No-data message still occupies one flit.
        assert_eq!(flits_for_transfer(FlitMode::Flit68, 0), 1);
        // 256 B mode packs more per flit.
        assert_eq!(flits_for_transfer(FlitMode::Flit256, 16384), 69);
    }

    proptest! {
        #[test]
        fn seq_change_always_detected(seq in 0u64..1_000_000, delta in 1u64..1000) {
            let mut f = Flit::new(seq, FlitMode::Flit68, FlitPayload::Idle);
            f.seq = seq + delta;
            prop_assert!(!f.crc_ok());
        }

        #[test]
        fn flit_count_scales_linearly(kb in 1u64..64) {
            let n = flits_for_transfer(FlitMode::Flit68, kb * 1024);
            prop_assert_eq!(n, kb * 16);
        }
    }
}
