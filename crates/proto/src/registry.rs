//! Table 1 of the paper: the commodity memory fabrics.
//!
//! A small declarative registry so the experiment harness can print the
//! table verbatim and tests can sanity-check the history (Gen-Z and
//! OpenCAPI merged into CXL).

use serde::Serialize;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FabricSpec {
    /// Interconnect name.
    pub interconnect: &'static str,
    /// Driving vendor / consortium.
    pub vendor: &'static str,
    /// Years of active development (inclusive start).
    pub active_from: u16,
    /// End year of active development; `None` means ongoing ("now").
    pub active_to: Option<u16>,
    /// Published specification revisions.
    pub specifications: &'static [&'static str],
    /// Product demonstrations cited by the paper.
    pub demonstrations: &'static [&'static str],
    /// Whether the effort has merged into CXL.
    pub merged_into_cxl: bool,
}

/// The four commodity memory fabrics of Table 1.
pub const COMMODITY_FABRICS: [FabricSpec; 4] = [
    FabricSpec {
        interconnect: "Gen-Z",
        vendor: "HPE/Gen-Z Consortium",
        active_from: 2016,
        active_to: Some(2021),
        specifications: &["Gen-Z 1.0", "Gen-Z 1.1"],
        demonstrations: &["Gen-Z Media Kit", "Gen-Z ChipSet for ExtraScale Fabric"],
        merged_into_cxl: true,
    },
    FabricSpec {
        interconnect: "CAPI/OpenCAPI",
        vendor: "IBM/OpenCAPI Consortium",
        active_from: 2014,
        active_to: Some(2022),
        specifications: &["CAPI 1.0", "CAPI 2.0", "OpenCAPI 3.0", "OpenCAPI 4.0"],
        demonstrations: &["BlueLink in POWER9"],
        merged_into_cxl: true,
    },
    FabricSpec {
        interconnect: "CCIX",
        vendor: "Xilinx/CCIX Consortium",
        active_from: 2016,
        active_to: None,
        specifications: &["CCIX 1.0", "CCIX 1.1", "CCIX 2.0"],
        demonstrations: &["CMN-700 Coherent Mesh Network"],
        merged_into_cxl: false,
    },
    FabricSpec {
        interconnect: "CXL",
        vendor: "Intel/CXL Consortium",
        active_from: 2019,
        active_to: None,
        specifications: &["CXL 1.0", "CXL 1.1", "CXL 2.0", "CXL 3.0"],
        demonstrations: &["Omega Fabric", "Leo Memory Platform"],
        merged_into_cxl: false,
    },
];

impl FabricSpec {
    /// Formats the active-development span as in the paper ("2016-2021",
    /// "2019-now").
    pub fn active_span(&self) -> String {
        match self.active_to {
            Some(end) => format!("{}-{}", self.active_from, end),
            None => format!("{}-now", self.active_from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_four_rows() {
        assert_eq!(COMMODITY_FABRICS.len(), 4);
    }

    #[test]
    fn genz_and_opencapi_merged_into_cxl() {
        let merged: Vec<&str> = COMMODITY_FABRICS
            .iter()
            .filter(|f| f.merged_into_cxl)
            .map(|f| f.interconnect)
            .collect();
        assert_eq!(merged, vec!["Gen-Z", "CAPI/OpenCAPI"]);
    }

    #[test]
    fn cxl_is_ongoing() {
        let cxl = COMMODITY_FABRICS
            .iter()
            .find(|f| f.interconnect == "CXL")
            .expect("CXL row");
        assert_eq!(cxl.active_span(), "2019-now");
        assert!(cxl.specifications.contains(&"CXL 3.0"));
    }

    #[test]
    fn spans_format_like_the_paper() {
        let genz = &COMMODITY_FABRICS[0];
        assert_eq!(genz.active_span(), "2016-2021");
    }
}
