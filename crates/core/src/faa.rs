//! Hardware cooperative scalable functions (design principle #3).
//!
//! "We propose a hardware cooperative scalable function for FAAs that
//! extends the capability of today's SR-IOV and scalable functions with an
//! active execution context. In addition to dedicated queueing resources,
//! each function defines (1) a domain-specific processing core; (2) a list
//! of message handlers, such as the actor programming model; (3) an
//! execution coordination sublayer" (§4 DP#3). The design "resembles the
//! TAM (Threaded Abstract Machine) and active messages".
//!
//! [`FaaEngine`] hosts several [`FunctionTemplate`]s on one accelerator
//! complex: each function has a dedicated submission queue and a handler
//! table; the engine runs functions cooperatively (round-robin with a
//! message quantum), paying a context save/restore cost when it switches
//! functions — the *fast context switching* the memory fabric enables
//! (§3 D#4), parameterized so experiments can contrast fabric-grade
//! (hundreds of ns) against communication-fabric-grade (µs) switch costs.

use std::collections::{HashMap, VecDeque};

use fcc_sim::{Component, ComponentId, Counter, Ctx, Histogram, Msg, SimTime};

/// The cost model of one message handler.
#[derive(Debug, Clone, Copy)]
pub struct HandlerSpec {
    /// Fixed cost per invocation.
    pub per_msg: SimTime,
    /// Additional cost per payload byte (ns/byte).
    pub per_byte_ns: f64,
}

impl HandlerSpec {
    /// Service time for a payload of `bytes`.
    pub fn cost(&self, bytes: u32) -> SimTime {
        self.per_msg + SimTime::from_ns(self.per_byte_ns * bytes as f64)
    }
}

/// A scalable function: handlers plus dedicated queueing.
#[derive(Debug, Clone)]
pub struct FunctionTemplate {
    /// Function id (dense, engine-local).
    pub id: u32,
    /// Handler table: message kind → cost model.
    pub handlers: HashMap<u8, HandlerSpec>,
    /// Submission-queue depth (backpressure beyond it).
    pub queue_depth: usize,
}

impl FunctionTemplate {
    /// A template with one uniform handler (tests and simple FAAs).
    pub fn uniform(id: u32, per_msg: SimTime, per_byte_ns: f64, queue_depth: usize) -> Self {
        let mut handlers = HashMap::new();
        handlers.insert(
            0,
            HandlerSpec {
                per_msg,
                per_byte_ns,
            },
        );
        FunctionTemplate {
            id,
            handlers,
            queue_depth,
        }
    }
}

/// An invocation (active message) for a function on the engine.
#[derive(Debug, Clone, Copy)]
pub struct FnInvoke {
    /// Target function.
    pub function: u32,
    /// Handler selector.
    pub kind: u8,
    /// Payload size.
    pub bytes: u32,
    /// Caller tag echoed in [`FnDone`].
    pub tag: u64,
    /// Completion receiver.
    pub reply_to: ComponentId,
}

/// Completion of an invocation.
#[derive(Debug, Clone, Copy)]
pub struct FnDone {
    /// The invocation's tag.
    pub tag: u64,
    /// Queueing + service latency inside the engine.
    pub latency: SimTime,
    /// Whether the invocation was executed (false = queue overflow).
    pub ok: bool,
}

#[derive(Debug)]
struct QueuedInvoke {
    invoke: FnInvoke,
    arrived: SimTime,
}

#[derive(Debug)]
struct FunctionState {
    template: FunctionTemplate,
    sq: VecDeque<QueuedInvoke>,
}

/// Self-message: the engine finished the current handler.
#[derive(Debug, Clone, Copy)]
struct ServiceDone;

/// One FAA complex hosting cooperative scalable functions.
pub struct FaaEngine {
    functions: Vec<FunctionState>,
    /// Context save/restore cost when switching between functions.
    ctx_switch: SimTime,
    /// Messages a resident function may process before yielding.
    quantum: u32,
    current: Option<u32>,
    quantum_used: u32,
    busy: bool,
    /// Invocations executed.
    pub executed: Counter,
    /// Invocations rejected on queue overflow.
    pub rejected: Counter,
    /// Context switches performed.
    pub ctx_switches: Counter,
    /// Per-invocation latency (ps).
    pub latency: Histogram,
}

impl FaaEngine {
    /// Creates an engine hosting `functions`.
    ///
    /// # Panics
    ///
    /// Panics if `functions` is empty, ids are not dense `0..n`, or
    /// `quantum` is zero.
    pub fn new(functions: Vec<FunctionTemplate>, ctx_switch: SimTime, quantum: u32) -> Self {
        assert!(!functions.is_empty(), "engine needs functions");
        assert!(quantum > 0, "quantum must be positive");
        for (i, f) in functions.iter().enumerate() {
            assert_eq!(f.id as usize, i, "function ids must be dense 0..n");
        }
        FaaEngine {
            functions: functions
                .into_iter()
                .map(|template| FunctionState {
                    template,
                    sq: VecDeque::new(),
                })
                .collect(),
            ctx_switch,
            quantum,
            current: None,
            quantum_used: 0,
            busy: false,
            executed: Counter::new(),
            rejected: Counter::new(),
            ctx_switches: Counter::new(),
            latency: Histogram::new(),
        }
    }

    /// Queued invocations across all functions.
    pub fn backlog(&self) -> usize {
        self.functions.iter().map(|f| f.sq.len()).sum()
    }

    /// Picks the next function to run: the resident one while it has work
    /// and quantum, else round-robin among non-empty queues.
    fn pick_next(&mut self) -> Option<u32> {
        if let Some(cur) = self.current {
            if self.quantum_used < self.quantum && !self.functions[cur as usize].sq.is_empty() {
                return Some(cur);
            }
        }
        let n = self.functions.len() as u32;
        let start = self.current.map(|c| c + 1).unwrap_or(0);
        for off in 0..n {
            let cand = (start + off) % n;
            if !self.functions[cand as usize].sq.is_empty() {
                return Some(cand);
            }
        }
        None
    }

    fn service_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.busy {
            return;
        }
        let Some(next) = self.pick_next() else {
            return;
        };
        let mut switch_cost = SimTime::ZERO;
        if self.current != Some(next) {
            if self.current.is_some() {
                switch_cost = self.ctx_switch;
                self.ctx_switches.inc();
            }
            self.current = Some(next);
            self.quantum_used = 0;
        }
        self.quantum_used += 1;
        let state = &mut self.functions[next as usize];
        // The scheduler only picks functions with a non-empty submission queue.
        #[allow(clippy::expect_used)]
        let queued = state.sq.pop_front().expect("picked non-empty");
        let handler = state
            .template
            .handlers
            .get(&queued.invoke.kind)
            .copied()
            .unwrap_or(HandlerSpec {
                per_msg: SimTime::from_ns(100.0),
                per_byte_ns: 0.0,
            });
        let service = switch_cost + handler.cost(queued.invoke.bytes);
        self.busy = true;
        self.executed.inc();
        let done_at = ctx.now() + service;
        let latency = done_at - queued.arrived;
        self.latency.record_time(latency);
        ctx.send(
            queued.invoke.reply_to,
            service,
            FnDone {
                tag: queued.invoke.tag,
                latency,
                ok: true,
            },
        );
        ctx.send_self(service, ServiceDone);
    }
}

impl Component for FaaEngine {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<FnInvoke>() {
            Ok(invoke) => {
                let Some(state) = self.functions.get_mut(invoke.function as usize) else {
                    self.rejected.inc();
                    return;
                };
                if state.sq.len() >= state.template.queue_depth {
                    self.rejected.inc();
                    ctx.send(
                        invoke.reply_to,
                        SimTime::ZERO,
                        FnDone {
                            tag: invoke.tag,
                            latency: SimTime::ZERO,
                            ok: false,
                        },
                    );
                    return;
                }
                state.sq.push_back(QueuedInvoke {
                    invoke,
                    arrived: ctx.now(),
                });
                self.service_next(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<ServiceDone>() {
            Ok(ServiceDone) => {
                self.busy = false;
                self.service_next(ctx);
            }
            Err(m) => panic!("faa engine: unexpected message {}", m.type_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::Engine;

    use super::*;

    struct Sink {
        done: Vec<FnDone>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.done.push(msg.downcast::<FnDone>().expect("fn done"));
        }
    }

    fn engine_with(
        n_functions: u32,
        ctx_switch_ns: f64,
        quantum: u32,
    ) -> (Engine, ComponentId, ComponentId) {
        let mut engine = Engine::new(4);
        let sink = engine.add_component("sink", Sink { done: vec![] });
        let functions = (0..n_functions)
            .map(|i| FunctionTemplate::uniform(i, SimTime::from_ns(500.0), 0.0, 64))
            .collect();
        let faa = engine.add_component(
            "faa",
            FaaEngine::new(functions, SimTime::from_ns(ctx_switch_ns), quantum),
        );
        (engine, faa, sink)
    }

    fn invoke(function: u32, tag: u64, sink: ComponentId) -> FnInvoke {
        FnInvoke {
            function,
            kind: 0,
            bytes: 0,
            tag,
            reply_to: sink,
        }
    }

    #[test]
    fn single_function_processes_in_order() {
        let (mut engine, faa, sink) = engine_with(1, 200.0, 8);
        for i in 0..5 {
            engine.post(faa, SimTime::ZERO, invoke(0, i, sink));
        }
        engine.run_until_idle();
        let s = engine.component::<Sink>(sink);
        let tags: Vec<u64> = s.done.iter().map(|d| d.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        // 5 x 500ns back-to-back, no switches.
        assert_eq!(engine.now(), SimTime::from_us(2.5));
        assert_eq!(engine.component::<FaaEngine>(faa).ctx_switches.get(), 0);
    }

    #[test]
    fn switching_between_functions_costs_context() {
        let (mut engine, faa, sink) = engine_with(2, 200.0, 1);
        // Alternate: with quantum 1 the engine must switch every message.
        for i in 0..4 {
            engine.post(faa, SimTime::ZERO, invoke((i % 2) as u32, i, sink));
        }
        engine.run_until_idle();
        let e = engine.component::<FaaEngine>(faa);
        assert_eq!(e.executed.get(), 4);
        assert_eq!(e.ctx_switches.get(), 3);
        // 4 * 500 + 3 * 200 = 2600ns.
        assert_eq!(engine.now(), SimTime::from_ns(2600.0));
    }

    #[test]
    fn larger_quantum_amortizes_switches() {
        let run = |quantum| {
            let (mut engine, faa, sink) = engine_with(2, 1000.0, quantum);
            for i in 0..16 {
                engine.post(faa, SimTime::ZERO, invoke((i % 2) as u32, i, sink));
            }
            engine.run_until_idle();
            (
                engine.now(),
                engine.component::<FaaEngine>(faa).ctx_switches.get(),
            )
        };
        let (t1, s1) = run(1);
        let (t8, s8) = run(8);
        assert!(s8 < s1, "quantum 8 switches less: {s8} vs {s1}");
        assert!(t8 < t1, "and finishes sooner: {t8} vs {t1}");
    }

    #[test]
    fn queue_overflow_backpressures() {
        let mut engine = Engine::new(4);
        let sink = engine.add_component("sink", Sink { done: vec![] });
        let faa = engine.add_component(
            "faa",
            FaaEngine::new(
                vec![FunctionTemplate::uniform(0, SimTime::from_us(10.0), 0.0, 2)],
                SimTime::from_ns(200.0),
                4,
            ),
        );
        for i in 0..5 {
            engine.post(faa, SimTime::ZERO, invoke(0, i, sink));
        }
        engine.run_until_idle();
        let e = engine.component::<FaaEngine>(faa);
        // 1 in service + 2 queued; 2 rejected.
        assert_eq!(e.rejected.get(), 2);
        let s = engine.component::<Sink>(sink);
        let failed = s.done.iter().filter(|d| !d.ok).count();
        assert_eq!(failed, 2);
    }

    #[test]
    fn per_byte_cost_scales_service_time() {
        let mut engine = Engine::new(4);
        let sink = engine.add_component("sink", Sink { done: vec![] });
        let faa = engine.add_component(
            "faa",
            FaaEngine::new(
                vec![FunctionTemplate::uniform(
                    0,
                    SimTime::from_ns(100.0),
                    0.5,
                    8,
                )],
                SimTime::from_ns(200.0),
                4,
            ),
        );
        engine.post(
            faa,
            SimTime::ZERO,
            FnInvoke {
                function: 0,
                kind: 0,
                bytes: 4096,
                tag: 1,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        // 100 + 0.5 * 4096 = 2148ns.
        assert_eq!(engine.now(), SimTime::from_ns(2148.0));
    }

    #[test]
    fn unknown_function_rejected() {
        let (mut engine, faa, sink) = engine_with(1, 200.0, 4);
        engine.post(faa, SimTime::ZERO, invoke(7, 1, sink));
        engine.run_until_idle();
        assert_eq!(engine.component::<FaaEngine>(faa).rejected.get(), 1);
    }
}
