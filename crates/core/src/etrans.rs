//! The elastic transaction engine (design principle #1).
//!
//! "FCC advocates data movement as a specialized and managed service. [...]
//! data transfers submitted by CPUs/FAAs are then delegated to dedicated
//! migration agents (in the same memory domain) and orchestrated via a
//! central module that enforces control-plane policies (e.g., remote
//! memory bandwidth throttling)" (§4 DP#1). The primitive is the paper's
//! `eTrans(src_addr_list, dst_addr_list, immediate_bit, attributes,
//! ownership)` (§5).
//!
//! * [`TransactionEngine`] is the central module: it admits submissions,
//!   applies per-tenant token-bucket throttling, and dispatches jobs to
//!   the least-loaded [`MigrationAgent`].
//! * A [`MigrationAgent`] executes a job as pipelined chunked read/write
//!   pairs through its own FHA, so the *initiator's* core never stalls —
//!   the decoupling the paper asks for.
//! * [`TransOwnership`] selects how completion is delivered: back to the
//!   caller, dropped (detached), or resolved as a distributed future.

use std::collections::{BTreeMap, HashMap, VecDeque};

use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc_sim::{Component, ComponentId, Counter, Ctx, Histogram, Msg, SimTime, TokenBucket};
use fcc_telemetry::{TraceCtx, Track};

/// Trace ids for eTrans jobs live in a reserved node-id namespace
/// (`0xFFFF`) so they never collide with FHA-allocated transaction ids.
fn job_trace_ctx(job_id: u64) -> TraceCtx {
    TraceCtx::new((0xFFFF_u64 << 48) | job_id)
}

/// Completion routing for an [`ETrans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransOwnership {
    /// Notify the submitter with [`ETransDone`].
    Caller,
    /// Fire-and-forget.
    Detached,
    /// Resolve a distributed future: [`crate::arbiter_client::FutureResolved`]
    /// with this id is sent to the submitter.
    Future(u64),
}

/// Scheduling attributes of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransAttrs {
    /// Tenant for control-plane throttling.
    pub tenant: u32,
    /// Larger = drained first among queued jobs.
    pub priority: u8,
}

/// The elastic transaction: scattered source ranges to scattered
/// destination ranges.
#[derive(Debug, Clone)]
pub struct ETrans {
    /// Source `(addr, len)` list.
    pub src: Vec<(u64, u32)>,
    /// Destination `(addr, len)` list (total length must match).
    pub dst: Vec<(u64, u32)>,
    /// The paper's immediate bit: skip queueing and throttling (the
    /// latency-sensitive synchronous path).
    pub immediate: bool,
    /// Scheduling attributes.
    pub attrs: TransAttrs,
    /// Completion routing.
    pub ownership: TransOwnership,
}

impl ETrans {
    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.src.iter().map(|&(_, l)| l as u64).sum()
    }

    /// Checks source/destination length agreement.
    pub fn validate(&self) -> bool {
        let dst: u64 = self.dst.iter().map(|&(_, l)| l as u64).sum();
        self.bytes() == dst && !self.src.is_empty()
    }
}

/// Submission message to the [`TransactionEngine`].
#[derive(Debug, Clone)]
pub struct SubmitETrans {
    /// The transfer.
    pub etrans: ETrans,
    /// Caller tag echoed in completions.
    pub tag: u64,
    /// Submitter (receives completions per ownership).
    pub reply_to: ComponentId,
}

/// Completion notification (ownership = `Caller`).
#[derive(Debug, Clone, Copy)]
pub struct ETransDone {
    /// The submission's tag.
    pub tag: u64,
    /// Submission time.
    pub issued_at: SimTime,
    /// Completion time.
    pub completed_at: SimTime,
    /// Bytes moved.
    pub bytes: u64,
}

/// Per-tenant throttle configuration installed on the engine.
#[derive(Debug, Clone, Copy)]
pub struct TenantLimit {
    /// Tenant id.
    pub tenant: u32,
    /// Sustained rate in Gbit/s.
    pub gbps: f64,
    /// Burst in bytes.
    pub burst: u64,
}

/// Internal: a job handed to an agent.
#[derive(Debug, Clone)]
struct Job {
    etrans: ETrans,
    tag: u64,
    reply_to: ComponentId,
    issued_at: SimTime,
    job_id: u64,
}

/// Internal: agent → engine completion.
#[derive(Debug, Clone, Copy)]
struct JobDone {
    job_id: u64,
}

/// Internal: engine → agent dispatch.
#[derive(Debug, Clone)]
struct Dispatch {
    job: Job,
    engine: ComponentId,
}

/// The central data-movement module.
pub struct TransactionEngine {
    agents: Vec<ComponentId>,
    agent_load: Vec<u64>,
    tenants: BTreeMap<u32, TokenBucket>,
    inflight: HashMap<u64, (Job, usize)>,
    delayed: VecDeque<Job>,
    /// Earliest outstanding [`Retry`] wake-up, if one is scheduled. Kept
    /// so a queue of throttled jobs arms one timer per pacing step
    /// instead of one per job (which would multiply per retry round).
    retry_at: Option<SimTime>,
    next_job: u64,
    trace: Track,
    /// Completed transfers.
    pub completed: Counter,
    /// Bytes moved.
    pub bytes_moved: Counter,
    /// Transfer latency distribution (ps).
    pub latency: Histogram,
    /// Submissions rejected (validation).
    pub rejected: Counter,
}

/// Self-message to retry throttled submissions.
#[derive(Debug, Clone, Copy)]
struct Retry;

impl TransactionEngine {
    /// Creates an engine over the given migration agents.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty.
    pub fn new(agents: Vec<ComponentId>) -> Self {
        assert!(!agents.is_empty(), "engine needs at least one agent");
        let n = agents.len();
        TransactionEngine {
            agents,
            agent_load: vec![0; n],
            tenants: BTreeMap::new(),
            inflight: HashMap::new(),
            delayed: VecDeque::new(),
            retry_at: None,
            next_job: 0,
            trace: Track::default(),
            completed: Counter::new(),
            bytes_moved: Counter::new(),
            latency: Histogram::new(),
            rejected: Counter::new(),
        }
    }

    /// Attaches a telemetry track; the engine then emits throttle-wait and
    /// whole-job spans for every transfer it orchestrates.
    pub fn set_trace(&mut self, track: Track) {
        self.trace = track;
    }

    /// Installs (or replaces) a tenant bandwidth limit.
    pub fn set_tenant_limit(&mut self, limit: TenantLimit) {
        self.tenants.insert(
            limit.tenant,
            TokenBucket::new(limit.gbps, limit.burst.max(1)),
        );
    }

    /// Sources all tenant limits from a fabric-scheduler budget
    /// derivation, replacing any ad-hoc per-tenant throttles. This keeps
    /// the engine's host-side pacing consistent with the admission
    /// policy the fabric switches enforce: one [`fcc_sched`] partition
    /// is the single policy surface for both.
    pub fn source_budgets(&mut self, rates: &[fcc_sched::TenantRate]) {
        for r in rates {
            self.set_tenant_limit(TenantLimit {
                tenant: r.tenant,
                gbps: r.gbps,
                burst: r.burst_bytes,
            });
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, job: Job) {
        // Least-loaded agent (by queued bytes); at least one agent is
        // registered before any job is dispatched.
        #[allow(clippy::expect_used)]
        let (idx, _) = self
            .agent_load
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("agents non-empty");
        self.agent_load[idx] += job.etrans.bytes();
        let agent = self.agents[idx];
        // Time between submission and dispatch is tenant throttling (or
        // Retry batching); zero for the immediate path.
        self.trace.span_nonzero(
            "arb",
            "etrans.throttle_wait",
            job.issued_at,
            ctx.now(),
            job_trace_ctx(job.job_id),
        );
        self.inflight.insert(job.job_id, (job.clone(), idx));
        ctx.send(
            agent,
            SimTime::ZERO,
            Dispatch {
                job,
                engine: ctx.self_id(),
            },
        );
    }

    fn admit(&mut self, ctx: &mut Ctx<'_>, job: Job) {
        if job.etrans.immediate {
            // The paper's immediate bit: no throttle, no queueing.
            self.dispatch(ctx, job);
            return;
        }
        let bytes = job.etrans.bytes();
        if let Some(bucket) = self.tenants.get_mut(&job.etrans.attrs.tenant) {
            // Debt-based pacing: a job dispatches once earlier debits have
            // drained (balance ≥ 0), then charges its full size, possibly
            // driving the balance negative. This paces a *stream* of jobs
            // at the tenant's rate regardless of individual job sizes
            // (waiting for `bytes` whole tokens would spin forever when a
            // job exceeds the burst capacity).
            let now = ctx.now();
            let at = bucket.earliest(now, 0);
            if at > now {
                self.delayed.push_back(job);
                if self.retry_at.is_none_or(|t| at < t) {
                    self.retry_at = Some(at);
                    ctx.send_self(at - now, Retry);
                }
                return;
            }
            bucket.force_consume(now, bytes);
        }
        self.dispatch(ctx, job);
    }
}

impl Component for TransactionEngine {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<SubmitETrans>() {
            Ok(submit) => {
                if !submit.etrans.validate() {
                    self.rejected.inc();
                    return;
                }
                let job = Job {
                    etrans: submit.etrans,
                    tag: submit.tag,
                    reply_to: submit.reply_to,
                    issued_at: ctx.now(),
                    job_id: self.next_job,
                };
                self.next_job += 1;
                self.admit(ctx, job);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Retry>() {
            Ok(Retry) => {
                // Re-admit queued jobs in priority order. Clear the timer
                // first: whichever job stays throttled re-arms it (once).
                self.retry_at = None;
                let mut queued: Vec<Job> = self.delayed.drain(..).collect();
                queued.sort_by_key(|j| std::cmp::Reverse(j.etrans.attrs.priority));
                for job in queued {
                    self.admit(ctx, job);
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<JobDone>() {
            Ok(done) => {
                // Agents only complete jobs this coordinator handed them.
                #[allow(clippy::expect_used)]
                let (job, agent_idx) = self
                    .inflight
                    .remove(&done.job_id)
                    .expect("completion for unknown job");
                self.agent_load[agent_idx] =
                    self.agent_load[agent_idx].saturating_sub(job.etrans.bytes());
                self.completed.inc();
                self.bytes_moved.add(job.etrans.bytes());
                self.latency.record_time(ctx.now() - job.issued_at);
                self.trace.span(
                    "etrans",
                    "etrans.job",
                    job.issued_at,
                    ctx.now(),
                    job_trace_ctx(job.job_id),
                );
                match job.etrans.ownership {
                    TransOwnership::Caller => {
                        ctx.send(
                            job.reply_to,
                            SimTime::ZERO,
                            ETransDone {
                                tag: job.tag,
                                issued_at: job.issued_at,
                                completed_at: ctx.now(),
                                bytes: job.etrans.bytes(),
                            },
                        );
                    }
                    TransOwnership::Detached => {}
                    TransOwnership::Future(id) => {
                        ctx.send(
                            job.reply_to,
                            SimTime::ZERO,
                            crate::arbiter_client::FutureResolved {
                                future_id: id,
                                ok: true,
                            },
                        );
                    }
                }
            }
            Err(m) => panic!("etrans engine: unexpected message {}", m.type_name()),
        }
    }
}

/// A migration agent: executes transfers as chunked read→write pairs
/// through its own FHA, `pipeline` chunks in flight.
pub struct MigrationAgent {
    fha: ComponentId,
    chunk: u32,
    pipeline: usize,
    queue: VecDeque<ActiveJob>,
    next_tag: u64,
    outstanding: HashMap<u64, ChunkState>,
    /// Chunks moved.
    pub chunks_moved: Counter,
}

#[derive(Debug)]
struct ActiveJob {
    job: Job,
    engine: ComponentId,
    /// Flattened chunk list: `(src, dst, len)`.
    chunks: Vec<(u64, u64, u32)>,
    next_chunk: usize,
    done_chunks: usize,
}

#[derive(Debug, Clone, Copy)]
enum ChunkState {
    /// Read issued; on completion issue the write. `(src, dst, len)` kept.
    Reading { dst: u64, len: u32 },
    /// Write issued; on completion the chunk is done.
    Writing,
}

impl MigrationAgent {
    /// Creates an agent bound to an FHA, with the given chunk size and
    /// chunk pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` or `pipeline` is zero.
    pub fn new(fha: ComponentId, chunk: u32, pipeline: usize) -> Self {
        assert!(chunk > 0 && pipeline > 0, "degenerate agent");
        MigrationAgent {
            fha,
            chunk,
            pipeline,
            queue: VecDeque::new(),
            next_tag: 0,
            outstanding: HashMap::new(),
            chunks_moved: Counter::new(),
        }
    }

    fn chunks_of(&self, etrans: &ETrans) -> Vec<(u64, u64, u32)> {
        // Flatten src and dst byte streams, then cut into chunks.
        let mut out = Vec::new();
        let mut src_iter = etrans.src.iter().copied();
        let mut dst_iter = etrans.dst.iter().copied();
        let (mut s_addr, mut s_left) = src_iter.next().unwrap_or((0, 0));
        let (mut d_addr, mut d_left) = dst_iter.next().unwrap_or((0, 0));
        loop {
            if s_left == 0 {
                match src_iter.next() {
                    Some((a, l)) => {
                        s_addr = a;
                        s_left = l;
                    }
                    None => break,
                }
                continue;
            }
            if d_left == 0 {
                match dst_iter.next() {
                    Some((a, l)) => {
                        d_addr = a;
                        d_left = l;
                    }
                    None => break,
                }
                continue;
            }
            let len = self.chunk.min(s_left).min(d_left);
            out.push((s_addr, d_addr, len));
            s_addr += len as u64;
            d_addr += len as u64;
            s_left -= len;
            d_left -= len;
        }
        out
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while self.outstanding.len() < self.pipeline {
            let Some(active) = self.queue.front_mut() else {
                return;
            };
            if active.next_chunk >= active.chunks.len() {
                // All chunks issued; wait for completions.
                return;
            }
            let (src, dst, len) = active.chunks[active.next_chunk];
            active.next_chunk += 1;
            let tag = self.next_tag;
            self.next_tag += 1;
            self.outstanding
                .insert(tag, ChunkState::Reading { dst, len });
            ctx.send(
                self.fha,
                SimTime::ZERO,
                HostRequest {
                    op: HostOp::Read {
                        addr: src,
                        bytes: len,
                    },
                    tag,
                    reply_to: ctx.self_id(),
                },
            );
        }
    }
}

impl Component for MigrationAgent {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Dispatch>() {
            Ok(dispatch) => {
                let chunks = self.chunks_of(&dispatch.job.etrans);
                self.queue.push_back(ActiveJob {
                    job: dispatch.job,
                    engine: dispatch.engine,
                    chunks,
                    next_chunk: 0,
                    done_chunks: 0,
                });
                self.pump(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<HostCompletion>() {
            Ok(hc) => {
                // The FHA only echoes tags this agent issued.
                #[allow(clippy::expect_used)]
                let state = self
                    .outstanding
                    .remove(&hc.tag)
                    .expect("completion for unknown chunk");
                match state {
                    ChunkState::Reading { dst, len } => {
                        // Read half done; now write to the destination.
                        self.outstanding.insert(hc.tag, ChunkState::Writing);
                        ctx.send(
                            self.fha,
                            SimTime::ZERO,
                            HostRequest {
                                op: HostOp::Write {
                                    addr: dst,
                                    bytes: len,
                                },
                                tag: hc.tag,
                                reply_to: ctx.self_id(),
                            },
                        );
                    }
                    ChunkState::Writing => {
                        self.chunks_moved.inc();
                        // A Writing chunk completion implies the job that
                        // issued it is still at the head of the queue.
                        #[allow(clippy::expect_used)]
                        let finished_job = {
                            let active = self.queue.front_mut().expect("job active");
                            active.done_chunks += 1;
                            if active.done_chunks == active.chunks.len() {
                                Some(self.queue.pop_front().expect("front"))
                            } else {
                                None
                            }
                        };
                        if let Some(active) = finished_job {
                            ctx.send(
                                active.engine,
                                SimTime::ZERO,
                                JobDone {
                                    job_id: active.job.job_id,
                                },
                            );
                        }
                        self.pump(ctx);
                    }
                }
            }
            Err(m) => panic!("migration agent: unexpected message {}", m.type_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use fcc_fabric::endpoint::{Endpoint, FixedLatencyMemory};
    use fcc_fabric::topology::{self, TopologySpec, FAM_BASE};
    use fcc_sim::Engine;

    use super::*;

    struct Sink {
        done: Vec<ETransDone>,
        futures: Vec<crate::arbiter_client::FutureResolved>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<ETransDone>() {
                Ok(d) => {
                    self.done.push(d);
                    return;
                }
                Err(m) => m,
            };
            match msg.downcast::<crate::arbiter_client::FutureResolved>() {
                Ok(f) => self.futures.push(f),
                Err(m) => panic!("sink: unexpected {}", m.type_name()),
            }
        }
    }

    /// Topology: one host (whose FHA the agent uses) + two devices behind
    /// a switch; engine + one agent.
    fn setup() -> (Engine, ComponentId, ComponentId) {
        let mut engine = Engine::new(21);
        let dev = |lat: f64| -> Box<dyn Endpoint> {
            Box::new(FixedLatencyMemory::new(
                fcc_sim::SimTime::from_ns(lat),
                fcc_sim::SimTime::from_ns(lat),
                64 << 20,
            ))
        };
        let topo = topology::single_switch(
            &mut engine,
            TopologySpec::default(),
            1,
            vec![dev(100.0), dev(100.0)],
        );
        let agent = engine.add_component("agent0", MigrationAgent::new(topo.hosts[0].fha, 4096, 4));
        let te = engine.add_component("etrans", TransactionEngine::new(vec![agent]));
        let sink = engine.add_component(
            "sink",
            Sink {
                done: vec![],
                futures: vec![],
            },
        );
        (engine, te, sink)
    }

    fn submit(bytes: u32, tag: u64, sink: ComponentId, ownership: TransOwnership) -> SubmitETrans {
        SubmitETrans {
            etrans: ETrans {
                src: vec![(FAM_BASE, bytes)],
                dst: vec![(FAM_BASE + (32 << 20), bytes)],
                immediate: false,
                attrs: TransAttrs::default(),
                ownership,
            },
            tag,
            reply_to: sink,
        }
    }

    #[test]
    fn transfer_moves_all_chunks_and_completes() {
        let (mut engine, te, sink) = setup();
        engine.post(
            te,
            fcc_sim::SimTime::ZERO,
            submit(64 * 1024, 1, sink, TransOwnership::Caller),
        );
        engine.run_until_idle();
        let s = engine.component::<Sink>(sink);
        assert_eq!(s.done.len(), 1);
        assert_eq!(s.done[0].bytes, 64 * 1024);
        assert!(s.done[0].completed_at > s.done[0].issued_at);
    }

    #[test]
    fn detached_and_future_ownership() {
        let (mut engine, te, sink) = setup();
        engine.post(
            te,
            fcc_sim::SimTime::ZERO,
            submit(4096, 1, sink, TransOwnership::Detached),
        );
        engine.post(
            te,
            fcc_sim::SimTime::ZERO,
            submit(4096, 2, sink, TransOwnership::Future(77)),
        );
        engine.run_until_idle();
        let s = engine.component::<Sink>(sink);
        assert!(s.done.is_empty(), "detached/future produce no ETransDone");
        assert_eq!(s.futures.len(), 1);
        assert_eq!(s.futures[0].future_id, 77);
        assert!(s.futures[0].ok);
    }

    #[test]
    fn scattered_lists_chunk_correctly() {
        let agent = MigrationAgent::new(
            // Component id is irrelevant for the pure chunker.
            ComponentIdStandIn::get(),
            4096,
            2,
        );
        let e = ETrans {
            src: vec![(0, 6000), (100_000, 2192)],
            dst: vec![(500_000, 8192)],
            immediate: false,
            attrs: TransAttrs::default(),
            ownership: TransOwnership::Detached,
        };
        assert!(e.validate());
        let chunks = agent.chunks_of(&e);
        let total: u64 = chunks.iter().map(|&(_, _, l)| l as u64).sum();
        assert_eq!(total, 8192);
        // Destination advances contiguously.
        let mut d = 500_000u64;
        for &(_, dst, len) in &chunks {
            assert_eq!(dst, d);
            d += len as u64;
        }
        // Chunk at the src-range boundary is cut short.
        assert!(chunks.iter().any(|&(_, _, l)| l < 4096));
    }

    /// Helper to mint a component id for pure tests.
    struct ComponentIdStandIn;

    impl ComponentIdStandIn {
        fn get() -> ComponentId {
            let mut engine = Engine::new(0);
            struct Nop;
            impl Component for Nop {
                fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
            }
            engine.add_component("nop", Nop)
        }
    }

    #[test]
    fn tenant_throttle_paces_a_stream_of_transfers() {
        let (mut engine, te, sink) = setup();
        engine
            .component_mut::<TransactionEngine>(te)
            .set_tenant_limit(TenantLimit {
                tenant: 0,
                gbps: 8.0, // 1 byte/ns.
                burst: 4096,
            });
        // Two 64 KiB jobs: the first dispatches on the burst allowance,
        // the second must wait for the first's ~65.5 KiB debt to drain at
        // 1 byte/ns.
        for tag in [1, 2] {
            engine.post(
                te,
                fcc_sim::SimTime::ZERO,
                submit(64 * 1024, tag, sink, TransOwnership::Caller),
            );
        }
        engine.run_until_idle();
        let s = engine.component::<Sink>(sink);
        assert_eq!(s.done.len(), 2);
        let first = s.done.iter().find(|d| d.tag == 1).expect("first");
        let second = s.done.iter().find(|d| d.tag == 2).expect("second");
        let lat1 = first.completed_at - first.issued_at;
        let lat2 = second.completed_at - second.issued_at;
        assert!(
            lat2 > lat1 + fcc_sim::SimTime::from_us(50.0),
            "second job must be paced: {lat1} vs {lat2}"
        );
    }

    #[test]
    fn immediate_bit_bypasses_throttle() {
        let (mut engine, te, sink) = setup();
        engine
            .component_mut::<TransactionEngine>(te)
            .set_tenant_limit(TenantLimit {
                tenant: 0,
                gbps: 8.0,
                burst: 4096,
            });
        // Two immediate jobs: neither is paced.
        for tag in [1, 2] {
            let mut sub = submit(64 * 1024, tag, sink, TransOwnership::Caller);
            sub.etrans.immediate = true;
            engine.post(te, fcc_sim::SimTime::ZERO, sub);
        }
        engine.run_until_idle();
        let s = engine.component::<Sink>(sink);
        assert_eq!(s.done.len(), 2);
        for d in &s.done {
            let lat = d.completed_at - d.issued_at;
            assert!(
                lat < fcc_sim::SimTime::from_us(40.0),
                "immediate transfer was throttled: {lat}"
            );
        }
    }

    #[test]
    fn budgets_sourced_from_partition_pace_like_explicit_limits() {
        use fcc_sched::{tenant_rates, CreditPartition, TenantShare};
        let (mut engine, te, sink) = setup();
        // One tenant owning the whole pool of a 8 Gbit/s admission point
        // with 4 KiB flits: equivalent to the explicit 8 Gbit/s limit in
        // `tenant_throttle_paces_a_stream_of_transfers`.
        let mut p = CreditPartition::new(1);
        p.add_tenant(
            0,
            TenantShare {
                group: 0,
                weight: 1,
                floor: 1,
            },
        );
        let rates = tenant_rates(&p, 8.0, 4096);
        engine
            .component_mut::<TransactionEngine>(te)
            .source_budgets(&rates);
        for tag in [1, 2] {
            engine.post(
                te,
                fcc_sim::SimTime::ZERO,
                submit(64 * 1024, tag, sink, TransOwnership::Caller),
            );
        }
        engine.run_until_idle();
        let s = engine.component::<Sink>(sink);
        assert_eq!(s.done.len(), 2);
        let first = s.done.iter().find(|d| d.tag == 1).expect("first");
        let second = s.done.iter().find(|d| d.tag == 2).expect("second");
        let lat1 = first.completed_at - first.issued_at;
        let lat2 = second.completed_at - second.issued_at;
        assert!(
            lat2 > lat1 + fcc_sim::SimTime::from_us(50.0),
            "partition-sourced budget must pace: {lat1} vs {lat2}"
        );
    }

    #[test]
    fn invalid_etrans_rejected() {
        let (mut engine, te, sink) = setup();
        let mut sub = submit(4096, 1, sink, TransOwnership::Caller);
        sub.etrans.dst = vec![(FAM_BASE, 100)];
        engine.post(te, fcc_sim::SimTime::ZERO, sub);
        engine.run_until_idle();
        assert_eq!(engine.component::<TransactionEngine>(te).rejected.get(), 1);
        assert!(engine.component::<Sink>(sink).done.is_empty());
    }
}
