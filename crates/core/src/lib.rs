#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! UniFabric: the FCC runtime (the paper's contribution, §4–§5).
//!
//! "Essentially, it is a distributed runtime system that provides a
//! collection of new/renovated programming abstractions and system
//! services at the rack/cluster scale" (§5). The four components the
//! paper enumerates:
//!
//! * [`etrans`] — the **elastic transaction engine** (DP#1): the
//!   `eTrans(src_addr_list, dst_addr_list, immediate_bit, attributes,
//!   ownership)` primitive, decoupled initiator/executor, migration
//!   agents, and control-plane bandwidth throttling.
//! * [`heap`] — the **unified heap manager** (DP#2): memory bins over
//!   heterogeneous fabric nodes, object-temperature profiling, and a
//!   migration runtime behind a `FabricBox` handle API.
//! * [`task`] — the **idempotent task framework** (DP#3): write/read-set
//!   analysis, region cutting into idempotent tasks, and the split
//!   runtime with re-execution recovery (vs. a checkpointing baseline).
//! * [`faa`] — **hardware cooperative scalable functions** (DP#3): the
//!   FAA function template with actor-style message handlers, cooperative
//!   scheduling and fast context switching.
//! * [`arbiter_client`] — the programmable interface to the central
//!   arbiter (DP#4): query/reserve/reclaim as distributed futures.

pub mod arbiter_client;
pub mod etrans;
pub mod faa;
pub mod heap;
pub mod task;

pub use arbiter_client::{ArbiterClient, ClientRequest, FutureResolved};
pub use etrans::{
    ETrans, ETransDone, MigrationAgent, SubmitETrans, TransAttrs, TransOwnership, TransactionEngine,
};
pub use faa::{FaaEngine, FnDone, FnInvoke, FunctionTemplate, HandlerSpec};
pub use heap::{FabricBox, HeapError, HeapNodeCfg, PlacementHint, UnifiedHeap};
pub use task::{
    analyze_idempotence, make_idempotent, DagRuntime, Half, RecoveryMode, RunStats, TaskId,
    TaskSpec,
};
