//! The unified heap manager (design principle #2).
//!
//! "FCC instantiates memory regions/segments from different fabric-attached
//! memory nodes as a series of various-sized memory bins, and then uses a
//! heap manager for object allocation and reclamation. Under the hood is a
//! runtime system that (1) profiles the object's access characteristics
//! and the underlying memory node's availability; (2) effectively migrates
//! objects across various memory nodes (including host local memory) based
//! on the object temperature, concurrent access model, and memory node
//! capabilities" (§4 DP#2).
//!
//! Costs are analytic, taken from Table 2-calibrated
//! [`MemNodeProfile`]s, which keeps the heap pure and property-testable;
//! bulk migrations are exported as a plan the elastic transaction engine
//! executes over the simulated fabric.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc_sim::SimTime;

/// A heap object handle — the backward-compatible "smart pointer" of the
/// paper. It stays valid across migrations; the heap resolves it to the
/// object's current node on every access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FabricBox {
    id: u64,
    size: u64,
}

impl FabricBox {
    /// Object size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// Heap errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// No node (or the hinted node) can fit the allocation.
    OutOfMemory,
    /// The handle does not name a live object.
    InvalidHandle,
    /// The node still holds live objects (offline requires an empty node).
    NodeBusy,
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory => write!(f, "out of memory"),
            HeapError::InvalidHandle => write!(f, "invalid handle"),
            HeapError::NodeBusy => write!(f, "node still holds live objects"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Placement preference at allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementHint {
    /// Let the heap choose (coldest tier with room, so hot data earns its
    /// way up through profiling).
    Auto,
    /// Prefer a specific node kind.
    Kind(MemNodeKind),
    /// Pin to a node index (no migration).
    Pinned(usize),
}

/// Configuration of one memory node contributed to the heap.
#[derive(Debug, Clone, Copy)]
pub struct HeapNodeCfg {
    /// The node's profile (kind, latencies, capacity).
    pub profile: MemNodeProfile,
}

/// Segregated-fit bins: size classes are powers of two from 64 B up.
#[derive(Debug, Default)]
struct BinAllocator {
    /// Free lists per size class (class 0 = 64 B).
    free: BTreeMap<u32, Vec<u64>>,
    bump: u64,
    capacity: u64,
}

fn size_class(size: u64) -> u32 {
    let sz = size.max(64).next_power_of_two();
    sz.trailing_zeros() - 6
}

fn class_bytes(class: u32) -> u64 {
    64 << class
}

impl BinAllocator {
    fn new(capacity: u64) -> Self {
        BinAllocator {
            free: BTreeMap::new(),
            bump: 0,
            capacity,
        }
    }

    fn alloc(&mut self, size: u64) -> Option<u64> {
        let class = size_class(size);
        if let Some(list) = self.free.get_mut(&class) {
            if let Some(addr) = list.pop() {
                return Some(addr);
            }
        }
        let bytes = class_bytes(class);
        if self.bump + bytes > self.capacity {
            return None;
        }
        let addr = self.bump;
        self.bump += bytes;
        Some(addr)
    }

    fn release(&mut self, addr: u64, size: u64) {
        self.free.entry(size_class(size)).or_default().push(addr);
    }

    fn bytes_in_use(&self) -> u64 {
        let freed: u64 = self
            .free
            .iter()
            .map(|(c, l)| class_bytes(*c) * l.len() as u64)
            .sum();
        self.bump - freed
    }
}

/// Lifecycle state of a heap node (online fabric composition). Indices
/// stay stable across the whole lifecycle: a removed node goes
/// [`NodeState::Offline`] rather than vacating its slot, so existing
/// handles and node indices never shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Serving allocations and accesses.
    Active,
    /// Being evacuated: no new allocations, existing objects still served.
    Draining,
    /// Detached from the fabric: no allocations, no objects.
    Offline,
}

#[derive(Debug)]
struct HeapNode {
    profile: MemNodeProfile,
    bins: BinAllocator,
    state: NodeState,
}

#[derive(Debug, Clone)]
struct ObjMeta {
    size: u64,
    node: usize,
    addr: u64,
    /// Exponentially-decayed access temperature.
    temp: f64,
    /// Hosts that have touched the object (sharing detection).
    sharers: u32,
    pinned: bool,
    reads: u64,
    writes: u64,
}

/// One migration decided by [`UnifiedHeap::rebalance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// The object moved.
    pub obj: FabricBox,
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
}

/// A rebalance outcome: the moves performed and their estimated cost.
#[derive(Debug, Clone, Default)]
pub struct MigrationPlan {
    /// Objects moved (already applied to heap metadata).
    pub moves: Vec<Move>,
    /// Total bytes moved.
    pub bytes: u64,
}

/// One relocation decided by [`UnifiedHeap::drain`]: like [`Move`] but
/// carrying the node-local bin addresses on both sides, so an executor
/// (the elastic composer's eTrans jobs) can turn it into fabric reads and
/// writes without reaching into heap internals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Relocation {
    /// The object relocated.
    pub obj: FabricBox,
    /// Source node index (the draining node).
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Bin address on the source node.
    pub src_addr: u64,
    /// Bin address on the destination node.
    pub dst_addr: u64,
}

/// A drain outcome: relocations off the draining node (already applied to
/// heap metadata — the data movement itself is the caller's job) plus any
/// objects no target could admit.
#[derive(Debug, Clone, Default)]
pub struct EvacuationPlan {
    /// Relocations, deterministic (object-id) order.
    pub moves: Vec<Relocation>,
    /// Total bytes to move.
    pub bytes: u64,
    /// Objects left stranded on the draining node (no admissible target
    /// with room). A non-empty list means the node cannot go offline.
    pub stranded: Vec<FabricBox>,
}

/// The unified heap.
///
/// # Examples
///
/// ```
/// use fcc_core::heap::{HeapNodeCfg, PlacementHint, UnifiedHeap};
/// use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
///
/// let mut heap = UnifiedHeap::new(vec![
///     HeapNodeCfg {
///         profile: MemNodeProfile::omega_like(MemNodeKind::HostLocal, 1 << 20),
///     },
///     HeapNodeCfg {
///         profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 30),
///     },
/// ]);
/// let obj = heap.alloc(4096, PlacementHint::Auto).unwrap();
/// // Objects start on the cold tier and earn promotion by temperature.
/// assert_eq!(heap.node_of(obj).unwrap(), 1);
/// for _ in 0..100 {
///     heap.access(obj, 0, false).unwrap();
/// }
/// heap.rebalance();
/// assert_eq!(heap.node_of(obj).unwrap(), 0);
/// ```
pub struct UnifiedHeap {
    nodes: Vec<HeapNode>,
    // HashMap, not BTreeMap: `access()` hits this per simulated access
    // (the e5 hot path), so the lookup must stay O(1). Every iteration
    // below is order-insensitive or explicitly sorted, and each site
    // carries an fcc-lint suppression stating which.
    objects: HashMap<u64, ObjMeta>,
    next_id: u64,
    /// Temperature decay applied at each rebalance.
    pub decay: f64,
    /// Migrations performed over the heap's lifetime.
    pub migrations: u64,
    /// Bytes moved over the heap's lifetime.
    pub bytes_migrated: u64,
}

impl UnifiedHeap {
    /// Builds a heap over the given nodes. Node order is significant:
    /// index 0 is conventionally host-local memory.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<HeapNodeCfg>) -> Self {
        assert!(!nodes.is_empty(), "heap needs at least one node");
        UnifiedHeap {
            nodes: nodes
                .into_iter()
                .map(|cfg| HeapNode {
                    profile: cfg.profile,
                    bins: BinAllocator::new(cfg.profile.capacity),
                    state: NodeState::Active,
                })
                .collect(),
            objects: HashMap::new(),
            next_id: 1,
            decay: 0.5,
            migrations: 0,
            bytes_migrated: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Contributes a new node to a live heap (hot-add), returning its
    /// index. The node starts [`NodeState::Active`].
    pub fn add_node(&mut self, cfg: HeapNodeCfg) -> usize {
        self.nodes.push(HeapNode {
            profile: cfg.profile,
            bins: BinAllocator::new(cfg.profile.capacity),
            state: NodeState::Active,
        });
        self.nodes.len() - 1
    }

    /// The lifecycle state of node `idx`.
    pub fn node_state(&self, idx: usize) -> NodeState {
        self.nodes[idx].state
    }

    /// Marks node `idx` draining: existing objects stay served, but the
    /// allocator and rebalancer stop targeting it. (Usually done through
    /// [`UnifiedHeap::drain`], which also plans the evacuation.)
    pub fn set_draining(&mut self, idx: usize) {
        self.nodes[idx].state = NodeState::Draining;
    }

    /// Takes an evacuated node offline. Fails with
    /// [`HeapError::NodeBusy`] while any live object remains on it.
    pub fn set_offline(&mut self, idx: usize) -> Result<(), HeapError> {
        if self.objects.values().any(|m| m.node == idx) {
            return Err(HeapError::NodeBusy);
        }
        let node = &mut self.nodes[idx];
        node.state = NodeState::Offline;
        node.bins = BinAllocator::new(node.profile.capacity);
        Ok(())
    }

    /// Returns node `idx` to service (re-add of a drained or offline
    /// node, or cancellation of a drain).
    pub fn set_online(&mut self, idx: usize) {
        self.nodes[idx].state = NodeState::Active;
    }

    /// Live objects currently resident on node `idx` (object-id order).
    pub fn objects_on(&self, idx: usize) -> Vec<FabricBox> {
        let mut v: Vec<FabricBox> = self
            // fcc-lint: allow(nondet-collection-iter) -- sorted by id on the next statement
            .objects
            .iter()
            .filter(|(_, m)| m.node == idx)
            .map(|(&id, m)| FabricBox { id, size: m.size })
            .collect();
        v.sort_by_key(|b| b.id);
        v
    }

    /// The (node, bin-address) an object currently resolves to.
    pub fn locate(&self, obj: FabricBox) -> Result<(usize, u64), HeapError> {
        self.objects
            .get(&obj.id)
            .map(|m| (m.node, m.addr))
            .ok_or(HeapError::InvalidHandle)
    }

    /// Bytes in use on a node.
    pub fn node_used(&self, idx: usize) -> u64 {
        self.nodes[idx].bins.bytes_in_use()
    }

    /// The node profile at `idx`.
    pub fn node_profile(&self, idx: usize) -> &MemNodeProfile {
        &self.nodes[idx].profile
    }

    /// Which node currently holds `obj`.
    pub fn node_of(&self, obj: FabricBox) -> Result<usize, HeapError> {
        self.objects
            .get(&obj.id)
            .map(|m| m.node)
            .ok_or(HeapError::InvalidHandle)
    }

    /// Allocates `size` bytes with a placement hint.
    pub fn alloc(&mut self, size: u64, hint: PlacementHint) -> Result<FabricBox, HeapError> {
        let order: Vec<usize> = match hint {
            PlacementHint::Pinned(idx) => vec![idx],
            PlacementHint::Kind(kind) => {
                let mut preferred: Vec<usize> = (0..self.nodes.len())
                    .filter(|&i| self.nodes[i].profile.kind == kind)
                    .collect();
                let rest: Vec<usize> = (0..self.nodes.len())
                    .filter(|&i| self.nodes[i].profile.kind != kind)
                    .collect();
                preferred.extend(rest);
                preferred
            }
            PlacementHint::Auto => {
                // Coldest (slowest) tier first: objects earn promotion.
                let mut idx: Vec<usize> = (0..self.nodes.len()).collect();
                idx.sort_by(|&a, &b| {
                    self.nodes[b]
                        .profile
                        .read_latency
                        .cmp(&self.nodes[a].profile.read_latency)
                });
                idx
            }
        };
        for node in order {
            if node >= self.nodes.len() {
                continue;
            }
            // Draining/offline nodes take no new allocations — the first
            // step of hot-remove is exactly this refusal.
            if self.nodes[node].state != NodeState::Active {
                continue;
            }
            if let Some(addr) = self.nodes[node].bins.alloc(size) {
                let id = self.next_id;
                self.next_id += 1;
                self.objects.insert(
                    id,
                    ObjMeta {
                        size,
                        node,
                        addr,
                        temp: 0.0,
                        sharers: 0,
                        pinned: matches!(hint, PlacementHint::Pinned(_)),
                        reads: 0,
                        writes: 0,
                    },
                );
                return Ok(FabricBox { id, size });
            }
        }
        Err(HeapError::OutOfMemory)
    }

    /// Frees an object.
    pub fn free(&mut self, obj: FabricBox) -> Result<(), HeapError> {
        let meta = self
            .objects
            .remove(&obj.id)
            .ok_or(HeapError::InvalidHandle)?;
        self.nodes[meta.node].bins.release(meta.addr, meta.size);
        Ok(())
    }

    /// Performs one access by `host`, returning its modeled cost and
    /// updating the object's profile.
    pub fn access(
        &mut self,
        obj: FabricBox,
        host: u16,
        is_write: bool,
    ) -> Result<SimTime, HeapError> {
        let meta = self
            .objects
            .get_mut(&obj.id)
            .ok_or(HeapError::InvalidHandle)?;
        meta.temp += 1.0;
        meta.sharers |= 1u32 << (host % 32);
        if is_write {
            meta.writes += 1;
        } else {
            meta.reads += 1;
        }
        let shared = meta.sharers.count_ones() > 1;
        let profile = &self.nodes[meta.node].profile;
        Ok(profile.access_cost(is_write, shared))
    }

    /// Mean access cost the current placement would give the recorded mix
    /// (diagnostics for experiments).
    pub fn placement_cost(&self) -> SimTime {
        let mut total = SimTime::ZERO;
        let mut accesses = 0u64;
        // fcc-lint: allow(nondet-collection-iter) -- commutative integer accumulation
        for meta in self.objects.values() {
            let profile = &self.nodes[meta.node].profile;
            let shared = meta.sharers.count_ones() > 1;
            total += profile.access_cost(false, shared) * meta.reads
                + profile.access_cost(true, shared) * meta.writes;
            accesses += meta.reads + meta.writes;
        }
        if accesses == 0 {
            SimTime::ZERO
        } else {
            total / accesses
        }
    }

    /// Whether `node` can correctly and efficiently host an object with
    /// the observed concurrent-access pattern: shared objects cannot live
    /// in single-host local memory, and write-shared objects avoid nodes
    /// without hardware coherence (the software-fence cost would eat the
    /// latency win) — the paper's "concurrent access model and memory
    /// node capabilities".
    fn node_admits(&self, node: usize, shared: bool, write_shared: bool) -> bool {
        let kind = self.nodes[node].profile.kind;
        if shared && !kind.shareable() {
            return false;
        }
        if write_shared && !kind.hw_coherent() {
            return false;
        }
        true
    }

    /// Runs a temperature-driven migration pass: hottest objects fill the
    /// fastest tiers *they are allowed on*, respecting capacity, sharing
    /// semantics and pinning; temperatures decay.
    pub fn rebalance(&mut self) -> MigrationPlan {
        // Rank nodes fast → slow; only active nodes may receive objects.
        let mut tiers: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].state == NodeState::Active)
            .collect();
        tiers.sort_by(|&a, &b| {
            self.nodes[a]
                .profile
                .read_latency
                .cmp(&self.nodes[b].profile.read_latency)
        });
        // Rank objects hot → cold (temperature density).
        let mut ranked: Vec<(u64, f64, u64, bool, bool)> = self
            // fcc-lint: allow(nondet-collection-iter) -- fully ordered by the (density, id) sort below
            .objects
            .iter()
            .filter(|(_, m)| !m.pinned)
            .map(|(&id, m)| {
                let shared = m.sharers.count_ones() > 1;
                (
                    id,
                    m.temp / m.size.max(1) as f64,
                    m.size,
                    shared,
                    shared && m.writes > 0,
                )
            })
            .collect();
        // Tie-break equal temperatures by object id so equal-heat
        // objects rank the same in every run regardless of the HashMap's
        // arbitrary iteration order above — this sort is what makes the
        // suppression sound.
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        // Desired placement: walk hot objects into the fastest tier with
        // remaining budget.
        let mut budget: Vec<u64> = (0..self.nodes.len())
            .map(|i| self.nodes[i].profile.capacity)
            .collect();
        let mut plan = MigrationPlan::default();
        for (id, _density, size, shared, write_shared) in ranked {
            // Find the fastest admissible tier that can take it.
            let mut target = None;
            for &t in &tiers {
                if !self.node_admits(t, shared, write_shared) {
                    continue;
                }
                let need = class_bytes(size_class(size));
                if budget[t] >= need {
                    budget[t] -= need;
                    target = Some(t);
                    break;
                }
            }
            let Some(target) = target else {
                continue;
            };
            // The ranking above was built from `objects` keys.
            #[allow(clippy::expect_used)]
            let meta = self.objects.get(&id).expect("ranked from objects");
            let (from, addr, osize) = (meta.node, meta.addr, meta.size);
            if from == target {
                continue;
            }
            // Only migrate if the destination actually has room now.
            let Some(new_addr) = self.nodes[target].bins.alloc(osize) else {
                continue;
            };
            self.nodes[from].bins.release(addr, osize);
            // Looked up successfully just above.
            #[allow(clippy::expect_used)]
            let meta = self.objects.get_mut(&id).expect("present");
            meta.node = target;
            meta.addr = new_addr;
            plan.moves.push(Move {
                obj: FabricBox { id, size: osize },
                from,
                to: target,
            });
            plan.bytes += osize;
        }
        self.migrations += plan.moves.len() as u64;
        self.bytes_migrated += plan.bytes;
        // Decay temperatures so stale heat fades.
        // fcc-lint: allow(nondet-collection-iter) -- independent per-object decay, no cross-object state
        for meta in self.objects.values_mut() {
            meta.temp *= self.decay;
        }
        plan
    }

    /// Marks node `idx` draining and plans the evacuation of every live
    /// object on it into `targets` (fastest admissible active target
    /// first), applying the moves to heap metadata immediately — the data
    /// movement itself is the caller's job (eTrans). Pinned objects move
    /// too (their node is leaving) and lose their pin.
    ///
    /// Objects no target can admit are returned in
    /// [`EvacuationPlan::stranded`] and stay on the draining node.
    pub fn drain(&mut self, idx: usize, targets: &[usize]) -> EvacuationPlan {
        self.nodes[idx].state = NodeState::Draining;
        let mut order: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&t| {
                t != idx && t < self.nodes.len() && self.nodes[t].state == NodeState::Active
            })
            .collect();
        order.sort_by(|&a, &b| {
            self.nodes[a]
                .profile
                .read_latency
                .cmp(&self.nodes[b].profile.read_latency)
        });
        let mut ids: Vec<u64> = self
            // fcc-lint: allow(nondet-collection-iter) -- sorted ascending on the next statement
            .objects
            .iter()
            .filter(|(_, m)| m.node == idx)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        let mut plan = EvacuationPlan::default();
        for id in ids {
            // Ids were just collected from `objects`.
            #[allow(clippy::expect_used)]
            let meta = self.objects.get(&id).expect("collected from objects");
            let (size, src_addr) = (meta.size, meta.addr);
            let shared = meta.sharers.count_ones() > 1;
            let write_shared = shared && meta.writes > 0;
            let mut placed = None;
            for &t in &order {
                if !self.node_admits(t, shared, write_shared) {
                    continue;
                }
                if let Some(dst_addr) = self.nodes[t].bins.alloc(size) {
                    placed = Some((t, dst_addr));
                    break;
                }
            }
            let Some((to, dst_addr)) = placed else {
                plan.stranded.push(FabricBox { id, size });
                continue;
            };
            self.nodes[idx].bins.release(src_addr, size);
            // Present: looked up above.
            #[allow(clippy::expect_used)]
            let meta = self.objects.get_mut(&id).expect("present");
            meta.node = to;
            meta.addr = dst_addr;
            meta.pinned = false;
            plan.moves.push(Relocation {
                obj: FabricBox { id, size },
                from: idx,
                to,
                src_addr,
                dst_addr,
            });
            plan.bytes += size;
        }
        self.migrations += plan.moves.len() as u64;
        self.bytes_migrated += plan.bytes;
        plan
    }

    /// Live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap has no live objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    fn two_tier(local_cap: u64, remote_cap: u64) -> UnifiedHeap {
        UnifiedHeap::new(vec![
            HeapNodeCfg {
                profile: MemNodeProfile::omega_like(MemNodeKind::HostLocal, local_cap),
            },
            HeapNodeCfg {
                profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, remote_cap),
            },
        ])
    }

    #[test]
    fn auto_placement_starts_cold() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let b = h.alloc(1024, PlacementHint::Auto).expect("fits");
        assert_eq!(h.node_of(b).expect("live"), 1, "remote tier first");
    }

    #[test]
    fn kind_hint_respected() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let b = h
            .alloc(1024, PlacementHint::Kind(MemNodeKind::HostLocal))
            .expect("fits");
        assert_eq!(h.node_of(b).expect("live"), 0);
    }

    #[test]
    fn oom_when_everything_full() {
        let mut h = two_tier(64, 64);
        h.alloc(64, PlacementHint::Auto).expect("first fits");
        h.alloc(64, PlacementHint::Auto).expect("second fits");
        assert_eq!(
            h.alloc(64, PlacementHint::Auto).expect_err("full"),
            HeapError::OutOfMemory
        );
    }

    #[test]
    fn free_recycles_space() {
        let mut h = two_tier(64, 64);
        let a = h.alloc(64, PlacementHint::Auto).expect("fits");
        let b = h.alloc(64, PlacementHint::Auto).expect("fits");
        h.free(a).expect("live");
        let c = h.alloc(64, PlacementHint::Auto).expect("recycled");
        assert_eq!(h.len(), 2);
        h.free(b).expect("live");
        h.free(c).expect("live");
        assert!(h.is_empty());
    }

    #[test]
    fn double_free_rejected() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let a = h.alloc(64, PlacementHint::Auto).expect("fits");
        h.free(a).expect("first free");
        assert_eq!(h.free(a).expect_err("gone"), HeapError::InvalidHandle);
    }

    #[test]
    fn hot_objects_promote_to_local() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let hot = h.alloc(4096, PlacementHint::Auto).expect("fits");
        let cold = h.alloc(4096, PlacementHint::Auto).expect("fits");
        for _ in 0..100 {
            h.access(hot, 0, false).expect("live");
        }
        h.access(cold, 0, false).expect("live");
        let plan = h.rebalance();
        assert!(plan.moves.iter().any(|m| m.obj == hot && m.to == 0));
        assert_eq!(h.node_of(hot).expect("live"), 0, "hot promoted");
    }

    #[test]
    fn capacity_pressure_keeps_only_hottest_local() {
        // Local tier fits one 4 KiB object only.
        let mut h = two_tier(4096, 1 << 20);
        let a = h.alloc(4096, PlacementHint::Auto).expect("fits");
        let b = h.alloc(4096, PlacementHint::Auto).expect("fits");
        for _ in 0..100 {
            h.access(a, 0, false).expect("live");
        }
        for _ in 0..10 {
            h.access(b, 0, false).expect("live");
        }
        h.rebalance();
        assert_eq!(h.node_of(a).expect("live"), 0);
        assert_eq!(h.node_of(b).expect("live"), 1, "no room for b");
    }

    #[test]
    fn migration_lowers_placement_cost() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let objs: Vec<FabricBox> = (0..16)
            .map(|_| h.alloc(4096, PlacementHint::Auto).expect("fits"))
            .collect();
        // Skewed: object 0 gets most accesses.
        for i in 0..1000 {
            let o = objs[if i % 10 == 0 { i % 16 } else { 0 }];
            h.access(o, 0, false).expect("live");
        }
        let before = h.placement_cost();
        h.rebalance();
        let after = h.placement_cost();
        assert!(
            after < before,
            "rebalance should cut mean cost: {before} → {after}"
        );
    }

    #[test]
    fn pinned_objects_never_move() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let p = h.alloc(4096, PlacementHint::Pinned(1)).expect("fits");
        for _ in 0..1000 {
            h.access(p, 0, false).expect("live");
        }
        let plan = h.rebalance();
        assert!(plan.moves.is_empty());
        assert_eq!(h.node_of(p).expect("live"), 1);
    }

    #[test]
    fn shared_objects_never_promote_to_single_host_memory() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let shared = h.alloc(4096, PlacementHint::Auto).expect("fits");
        // Two hosts hammer it: it is the hottest object by far.
        for i in 0..1000 {
            h.access(shared, (i % 2) as u16, false).expect("live");
        }
        h.rebalance();
        // HostLocal is not shareable: the object must stay on the fabric
        // node despite its heat.
        assert_eq!(h.node_of(shared).expect("live"), 1);
    }

    #[test]
    fn write_shared_objects_require_hw_coherence() {
        let mut h = UnifiedHeap::new(vec![
            HeapNodeCfg {
                profile: MemNodeProfile::omega_like(MemNodeKind::NonCcNuma, 1 << 20),
            },
            HeapNodeCfg {
                profile: MemNodeProfile::omega_like(MemNodeKind::CcNuma, 1 << 20),
            },
        ]);
        // NonCC reads slightly faster, so a read-shared object prefers it…
        let read_shared = h.alloc(4096, PlacementHint::Pinned(1)).expect("fits");
        let mut h2 = UnifiedHeap::new(vec![
            HeapNodeCfg {
                profile: MemNodeProfile::omega_like(MemNodeKind::NonCcNuma, 1 << 20),
            },
            HeapNodeCfg {
                profile: MemNodeProfile::omega_like(MemNodeKind::CcNuma, 1 << 20),
            },
        ]);
        let write_shared = h2.alloc(4096, PlacementHint::Auto).expect("fits");
        let _ = read_shared;
        for i in 0..100 {
            h2.access(write_shared, (i % 2) as u16, true).expect("live");
        }
        h2.rebalance();
        let node = h2.node_of(write_shared).expect("live");
        assert_eq!(
            h2.node_profile(node).kind,
            MemNodeKind::CcNuma,
            "write-shared data needs hardware coherence"
        );
    }

    #[test]
    fn shared_writes_cost_more_on_coherent_nodes() {
        let mut h = UnifiedHeap::new(vec![HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CcNuma, 1 << 20),
        }]);
        let o = h.alloc(64, PlacementHint::Auto).expect("fits");
        let single = h.access(o, 0, true).expect("live");
        h.access(o, 1, false).expect("second host touches");
        let shared = h.access(o, 0, true).expect("live");
        assert!(shared > single, "{single} vs {shared}");
    }

    #[test]
    fn draining_node_refuses_new_allocations() {
        let mut h = two_tier(1 << 20, 1 << 20);
        h.set_draining(1);
        let b = h.alloc(4096, PlacementHint::Auto).expect("fits");
        assert_eq!(h.node_of(b).expect("live"), 0, "drained tier skipped");
        assert_eq!(
            h.alloc(4096, PlacementHint::Pinned(1))
                .expect_err("refused"),
            HeapError::OutOfMemory
        );
    }

    #[test]
    fn drain_relocates_everything_with_addresses() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let a = h.alloc(4096, PlacementHint::Auto).expect("fits");
        let b = h.alloc(256, PlacementHint::Pinned(1)).expect("fits");
        let plan = h.drain(1, &[0]);
        assert_eq!(plan.moves.len(), 2);
        assert!(plan.stranded.is_empty());
        assert_eq!(plan.bytes, 4096 + 256);
        for m in &plan.moves {
            assert_eq!(m.from, 1);
            assert_eq!(m.to, 0);
        }
        assert_eq!(h.node_of(a).expect("live"), 0);
        assert_eq!(h.node_of(b).expect("live"), 0, "pins don't survive drain");
        assert_eq!(h.node_state(1), NodeState::Draining);
        h.set_offline(1).expect("empty after drain");
        assert_eq!(h.node_state(1), NodeState::Offline);
    }

    #[test]
    fn drain_strands_what_no_target_admits() {
        // Target tier fits a single 4 KiB class.
        let mut h = two_tier(4096, 1 << 20);
        let a = h.alloc(4096, PlacementHint::Auto).expect("fits");
        let b = h.alloc(4096, PlacementHint::Auto).expect("fits");
        let plan = h.drain(1, &[0]);
        assert_eq!(plan.moves.len(), 1);
        assert_eq!(plan.stranded.len(), 1);
        assert_eq!(
            h.set_offline(1).expect_err("stranded object"),
            HeapError::NodeBusy
        );
        let _ = (a, b);
    }

    #[test]
    fn offline_node_rejoins_via_set_online() {
        let mut h = two_tier(1 << 20, 1 << 20);
        h.drain(1, &[0]);
        h.set_offline(1).expect("empty");
        h.set_online(1);
        let b = h.alloc(4096, PlacementHint::Auto).expect("fits");
        assert_eq!(h.node_of(b).expect("live"), 1, "rejoined cold tier");
    }

    #[test]
    fn hot_add_extends_a_live_heap() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let idx = h.add_node(HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 20),
        });
        assert_eq!(idx, 2);
        assert_eq!(h.node_state(idx), NodeState::Active);
        assert_eq!(h.node_count(), 3);
    }

    #[test]
    fn rebalance_never_targets_a_draining_node() {
        let mut h = two_tier(1 << 20, 1 << 20);
        let hot = h.alloc(4096, PlacementHint::Auto).expect("fits");
        for _ in 0..100 {
            h.access(hot, 0, false).expect("live");
        }
        h.set_draining(0);
        let plan = h.rebalance();
        assert!(plan.moves.is_empty(), "only target tier is draining");
        assert_eq!(h.node_of(hot).expect("live"), 1);
    }

    proptest! {
        /// Allocations within one node never overlap (segregated-fit
        /// soundness), across interleaved alloc/free.
        #[test]
        fn allocations_never_overlap(ops in prop::collection::vec((1u64..8192, any::<bool>()), 1..200)) {
            let mut h = two_tier(1 << 22, 1 << 22);
            let mut live: Vec<FabricBox> = Vec::new();
            for (size, do_free) in ops {
                if do_free && !live.is_empty() {
                    let b = live.swap_remove(0);
                    h.free(b).expect("tracked live");
                } else if let Ok(b) = h.alloc(size, PlacementHint::Auto) {
                    live.push(b);
                }
                // Overlap check via (node, addr) uniqueness of class spans.
                let mut spans: Vec<(usize, u64, u64)> = h
                    .objects
                    .values()
                    .map(|m| (m.node, m.addr, class_bytes(size_class(m.size))))
                    .collect();
                spans.sort();
                for w in spans.windows(2) {
                    let (n0, a0, l0) = w[0];
                    let (n1, a1, _) = w[1];
                    prop_assert!(n0 != n1 || a0 + l0 <= a1, "overlap at node {n0}");
                }
            }
        }

        /// bytes_in_use is conserved by alloc/free pairs.
        #[test]
        fn usage_conserved(sizes in prop::collection::vec(1u64..4096, 1..50)) {
            let mut h = two_tier(1 << 22, 1 << 22);
            let before: u64 = h.node_used(0) + h.node_used(1);
            let boxes: Vec<FabricBox> = sizes
                .iter()
                .map(|&s| h.alloc(s, PlacementHint::Auto).expect("fits"))
                .collect();
            for b in boxes {
                h.free(b).expect("live");
            }
            let after: u64 = h.node_used(0) + h.node_used(1);
            prop_assert_eq!(before, after);
        }
    }
}
