//! The idempotent task framework (design principle #3).
//!
//! "The key idea is leveraging the principle of idempotence to break
//! programs into regions of code that can be recovered through simple
//! re-execution. [...] an idempotent task can be re-executed and restarted
//! multiple times without jeopardizing correctness" (§4 DP#3). Two parts:
//!
//! * The **analysis/compilation side**: [`analyze_idempotence`] detects
//!   clobber anti-dependences (a task that overwrites its own input cannot
//!   be blindly re-executed) and [`make_idempotent`] cuts such a task into
//!   an idempotent pair by versioning the clobbered output into a shadow
//!   region plus an idempotent commit task — the classic output-renaming
//!   transformation of the idempotent-processor work the paper cites.
//! * The **split runtime**: [`DagRuntime`] list-schedules a task DAG onto
//!   executors living in separate power domains, injects failures from a
//!   [`FailureSchedule`], and recovers either by idempotent re-execution
//!   or by the checkpoint/restore baseline — producing the goodput and
//!   wasted-work numbers of experiment E6.

use std::collections::HashMap;

use fcc_proto::addr::AddrRange;
use fcc_sim::SimTime;
use fcc_workloads::failure::FailureSchedule;

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Which half of the split runtime executes the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Half {
    /// Host-side dispatch/control (short, runs on the host executor).
    Top,
    /// Bulk work on a fabric-attached accelerator.
    Bottom,
}

/// A task region: its data footprint and cost.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Identifier (unique within a DAG).
    pub id: TaskId,
    /// Regions read.
    pub reads: Vec<AddrRange>,
    /// Regions written.
    pub writes: Vec<AddrRange>,
    /// Pure compute time on a unit-speed executor.
    pub compute: SimTime,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
    /// Placement half.
    pub half: Half,
}

impl TaskSpec {
    /// A convenience constructor for dependency-only tasks.
    pub fn new(id: u32, compute: SimTime, deps: Vec<u32>) -> Self {
        TaskSpec {
            id: TaskId(id),
            reads: Vec::new(),
            writes: Vec::new(),
            compute,
            deps: deps.into_iter().map(TaskId).collect(),
            half: Half::Bottom,
        }
    }
}

/// Result of idempotence analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdempotenceReport {
    /// Read regions the task also writes (clobber anti-dependences).
    pub clobbers: Vec<AddrRange>,
}

impl IdempotenceReport {
    /// Whether re-execution is safe as-is.
    pub fn is_idempotent(&self) -> bool {
        self.clobbers.is_empty()
    }
}

/// Detects clobber anti-dependences: any overlap between the read set and
/// the write set makes naive re-execution unsafe (the second run would
/// read its own partial output).
///
/// # Examples
///
/// ```
/// use fcc_core::task::{analyze_idempotence, make_idempotent, Half, TaskId, TaskSpec};
/// use fcc_proto::addr::AddrRange;
/// use fcc_sim::SimTime;
///
/// let in_place = TaskSpec {
///     id: TaskId(1),
///     reads: vec![AddrRange::new(0, 4096)],
///     writes: vec![AddrRange::new(0, 4096)],
///     compute: SimTime::from_us(10.0),
///     deps: vec![],
///     half: Half::Bottom,
/// };
/// assert!(!analyze_idempotence(&in_place).is_idempotent());
/// // Output versioning cuts it into an idempotent pair.
/// let fixed = make_idempotent(&in_place, 0x10_0000, 99);
/// assert_eq!(fixed.len(), 2);
/// assert!(fixed.iter().all(|t| analyze_idempotence(t).is_idempotent()));
/// ```
pub fn analyze_idempotence(spec: &TaskSpec) -> IdempotenceReport {
    let mut clobbers = Vec::new();
    for r in &spec.reads {
        for w in &spec.writes {
            if r.overlaps(w) {
                let base = r.base.max(w.base);
                let end = r.end().min(w.end());
                clobbers.push(AddrRange::new(base, end - base));
            }
        }
    }
    IdempotenceReport { clobbers }
}

/// Rewrites a clobbering task into an idempotent pair:
///
/// 1. the original task with every clobbered output renamed into a shadow
///    region starting at `shadow_base` (it now reads its input intact and
///    writes elsewhere → idempotent), and
/// 2. a commit task that copies the shadow region onto the original
///    location (reads shadow, writes original — disjoint → idempotent).
///
/// Returns the task(s) to run; a task that is already idempotent is
/// returned unchanged.
pub fn make_idempotent(spec: &TaskSpec, shadow_base: u64, commit_id: u32) -> Vec<TaskSpec> {
    let report = analyze_idempotence(spec);
    if report.is_idempotent() {
        return vec![spec.clone()];
    }
    let mut shadow_cursor = shadow_base;
    let mut main = spec.clone();
    let mut commit_reads = Vec::new();
    let mut commit_writes = Vec::new();
    for w in &mut main.writes {
        let clobbered = spec.reads.iter().any(|r| r.overlaps(w));
        if clobbered {
            let shadow = AddrRange::new(shadow_cursor, w.len);
            shadow_cursor += w.len;
            commit_reads.push(shadow);
            commit_writes.push(*w);
            *w = shadow;
        }
    }
    let commit = TaskSpec {
        id: TaskId(commit_id),
        reads: commit_reads,
        writes: commit_writes,
        // Commit is a bounded copy: cost proportional to bytes at 10 GB/s.
        compute: SimTime::from_ns(commit_writes_len(&main) as f64 / 10.0),
        deps: vec![main.id],
        // Commit runs wherever the main task ran (its output is local).
        half: spec.half,
    };
    vec![main, commit]
}

fn commit_writes_len(main: &TaskSpec) -> u64 {
    main.writes.iter().map(|w| w.len).sum()
}

/// Pure compute performed during `progress` of wall time when every
/// `interval` of work is followed by a `cost` checkpoint.
fn work_done(progress: SimTime, interval: SimTime, cost: SimTime) -> SimTime {
    let rate = interval.as_ns() / (interval.as_ns() + cost.as_ns());
    SimTime::from_ns(progress.as_ns() * rate)
}

/// The checkpoint-persisted portion of [`work_done`]: rounded down to a
/// whole number of checkpoint intervals.
fn kept_work(progress: SimTime, interval: SimTime, cost: SimTime) -> SimTime {
    let done = work_done(progress, interval, cost);
    let intervals = (done.as_ns() / interval.as_ns()).floor();
    SimTime::from_ns(intervals * interval.as_ns())
}

/// Recovery strategy of the runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryMode {
    /// Idempotent re-execution: a failed task restarts from its inputs.
    Idempotent,
    /// Checkpoint/restore baseline: every task checkpoints each
    /// `interval`, paying `cost` per checkpoint; a failure resumes from
    /// the last checkpoint.
    Checkpoint {
        /// Checkpoint period.
        interval: SimTime,
        /// Cost per checkpoint.
        cost: SimTime,
    },
}

/// An executor: one computing element in a power domain.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    /// Power domain index (into the failure schedule).
    pub domain: usize,
    /// Relative speed (1.0 = unit).
    pub speed: f64,
    /// Which half this executor runs.
    pub half: Half,
}

/// Outcome of a DAG run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Completion time of the last task.
    pub makespan: SimTime,
    /// Useful compute performed.
    pub useful_work: SimTime,
    /// Compute discarded by failures (partial executions).
    pub wasted_work: SimTime,
    /// Overhead spent checkpointing (zero for idempotent mode).
    pub checkpoint_overhead: SimTime,
    /// Task (re-)starts beyond the first execution.
    pub reexecutions: u64,
    /// Whether all results are trustworthy (false if a non-idempotent
    /// task was re-executed without versioning).
    pub correct: bool,
}

/// The split runtime: schedules a DAG over executors with failures.
pub struct DagRuntime {
    executors: Vec<Executor>,
    mode: RecoveryMode,
    trace: fcc_telemetry::Track,
}

impl DagRuntime {
    /// Creates a runtime.
    ///
    /// # Panics
    ///
    /// Panics if `executors` is empty.
    pub fn new(executors: Vec<Executor>, mode: RecoveryMode) -> Self {
        assert!(!executors.is_empty(), "no executors");
        DagRuntime {
            executors,
            mode,
            trace: fcc_telemetry::Track::default(),
        }
    }

    /// Attaches a telemetry track; `run` then emits one span per task
    /// execution, labeled by half (`task.top` / `task.bottom`).
    pub fn set_trace(&mut self, track: fcc_telemetry::Track) {
        self.trace = track;
    }

    /// Runs `tasks` to completion under `failures`, returning statistics.
    ///
    /// # Panics
    ///
    /// Panics if the DAG has a dependency cycle or a missing dependency.
    pub fn run(&self, tasks: &[TaskSpec], failures: &FailureSchedule) -> RunStats {
        let by_id: HashMap<TaskId, &TaskSpec> = tasks.iter().map(|t| (t.id, t)).collect();
        for t in tasks {
            for d in &t.deps {
                assert!(by_id.contains_key(d), "missing dependency {d:?}");
            }
        }
        let mut finished: HashMap<TaskId, SimTime> = HashMap::new();
        let mut exec_free: Vec<SimTime> = vec![SimTime::ZERO; self.executors.len()];
        let mut stats = RunStats {
            makespan: SimTime::ZERO,
            useful_work: SimTime::ZERO,
            wasted_work: SimTime::ZERO,
            checkpoint_overhead: SimTime::ZERO,
            reexecutions: 0,
            correct: true,
        };
        let mut remaining: Vec<&TaskSpec> = tasks.iter().collect();
        let mut guard = 0usize;
        while !remaining.is_empty() {
            guard += 1;
            assert!(
                guard <= tasks.len() * tasks.len() + tasks.len() + 4,
                "dependency cycle in task DAG"
            );
            let mut next_round = Vec::new();
            let mut progressed = false;
            for t in remaining {
                let ready_at = match t
                    .deps
                    .iter()
                    .map(|d| finished.get(d).copied())
                    .collect::<Option<Vec<SimTime>>>()
                {
                    Some(times) => times.into_iter().max().unwrap_or(SimTime::ZERO),
                    None => {
                        next_round.push(t);
                        continue;
                    }
                };
                progressed = true;
                // Earliest-finish executor of the right half.
                let (exec_idx, _) = exec_free
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| self.executors[i].half == t.half)
                    .min_by_key(|&(_, &free)| free.max(ready_at))
                    .unwrap_or_else(|| panic!("no executor for half {:?}", t.half));
                let start = exec_free[exec_idx].max(ready_at);
                let end = self.simulate_task(t, exec_idx, start, failures, &mut stats);
                let name = match t.half {
                    Half::Top => "task.top",
                    Half::Bottom => "task.bottom",
                };
                self.trace
                    .span("task", name, start, end, fcc_telemetry::TraceCtx::NONE);
                exec_free[exec_idx] = end;
                finished.insert(t.id, end);
                stats.makespan = stats.makespan.max(end);
            }
            assert!(progressed || next_round.is_empty(), "cycle");
            remaining = next_round;
        }
        stats
    }

    /// Simulates one task execution with failures; returns its end time.
    fn simulate_task(
        &self,
        t: &TaskSpec,
        exec_idx: usize,
        mut start: SimTime,
        failures: &FailureSchedule,
        stats: &mut RunStats,
    ) -> SimTime {
        let exec = self.executors[exec_idx];
        let duration = SimTime::from_ns(t.compute.as_ns() / exec.speed);
        let clobbering = !analyze_idempotence(t).is_idempotent();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            assert!(
                attempts < 10_000,
                "failure storm never lets the task finish"
            );
            // Wait out any outage at the start instant.
            while failures.is_down(exec.domain, start) {
                #[allow(clippy::expect_used)]
                let recovery = failures
                    .events()
                    .iter()
                    .filter(|e| e.domain == exec.domain && e.at <= start && start < e.recovered_at)
                    .map(|e| e.recovered_at)
                    .max()
                    // `is_down` returned true, so a covering outage exists.
                    .expect("down implies an active outage");
                start = recovery;
            }
            let end = start + self.checkpointed_duration(duration, stats);
            // Does a failure interrupt [start, end)?
            let hit = failures
                .events()
                .iter()
                .filter(|e| e.domain == exec.domain && e.at >= start && e.at < end)
                .min_by_key(|e| e.at);
            match hit {
                None => {
                    stats.useful_work += duration;
                    return end;
                }
                Some(ev) => {
                    stats.reexecutions += 1;
                    let progress = ev.at - start;
                    match self.mode {
                        RecoveryMode::Idempotent => {
                            // Everything since task start is discarded.
                            stats.wasted_work += progress;
                            if clobbering {
                                // Re-executing a clobbering task reads its
                                // own partial output: silent corruption.
                                stats.correct = false;
                            }
                            start = ev.recovered_at;
                        }
                        RecoveryMode::Checkpoint { interval, cost } => {
                            // Only work since the last checkpoint is lost.
                            let kept = kept_work(progress, interval, cost);
                            stats.wasted_work += work_done(progress, interval, cost) - kept;
                            stats.useful_work += kept;
                            let remaining = duration - kept;
                            start = ev.recovered_at;
                            let end = start + self.checkpointed_duration(remaining, stats);
                            return self.finish_with_failures(
                                remaining,
                                end,
                                start,
                                exec.domain,
                                failures,
                                stats,
                                interval,
                                cost,
                            );
                        }
                    }
                }
            }
        }
    }

    fn checkpointed_duration(&self, duration: SimTime, stats: &mut RunStats) -> SimTime {
        match self.mode {
            RecoveryMode::Idempotent => duration,
            RecoveryMode::Checkpoint { interval, cost } => {
                let checkpoints = (duration.as_ns() / interval.as_ns()).floor() as u64;
                let overhead = cost * checkpoints;
                stats.checkpoint_overhead += overhead;
                duration + overhead
            }
        }
    }

    /// Continues a checkpoint-mode task after its first failure.
    #[allow(clippy::too_many_arguments)]
    fn finish_with_failures(
        &self,
        mut remaining: SimTime,
        mut end: SimTime,
        mut start: SimTime,
        domain: usize,
        failures: &FailureSchedule,
        stats: &mut RunStats,
        interval: SimTime,
        cost: SimTime,
    ) -> SimTime {
        loop {
            while failures.is_down(domain, start) {
                #[allow(clippy::expect_used)]
                let recovery = failures
                    .events()
                    .iter()
                    .filter(|e| e.domain == domain && e.at <= start && start < e.recovered_at)
                    .map(|e| e.recovered_at)
                    .max()
                    // `is_down` returned true, so a covering outage exists.
                    .expect("active outage");
                start = recovery;
                end = start + self.checkpointed_duration(remaining, stats);
            }
            let hit = failures
                .events()
                .iter()
                .filter(|e| e.domain == domain && e.at >= start && e.at < end)
                .min_by_key(|e| e.at);
            match hit {
                None => {
                    stats.useful_work += remaining;
                    return end;
                }
                Some(ev) => {
                    stats.reexecutions += 1;
                    let progress = ev.at - start;
                    let kept = kept_work(progress, interval, cost);
                    stats.wasted_work += work_done(progress, interval, cost) - kept;
                    stats.useful_work += kept;
                    remaining -= kept;
                    start = ev.recovered_at;
                    end = start + self.checkpointed_duration(remaining, stats);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use fcc_workloads::failure::FailureEvent;

    use super::*;

    fn range(base: u64, len: u64) -> AddrRange {
        AddrRange::new(base, len)
    }

    #[test]
    fn disjoint_read_write_is_idempotent() {
        let t = TaskSpec {
            id: TaskId(1),
            reads: vec![range(0, 1024)],
            writes: vec![range(4096, 1024)],
            compute: SimTime::from_us(10.0),
            deps: vec![],
            half: Half::Bottom,
        };
        assert!(analyze_idempotence(&t).is_idempotent());
    }

    #[test]
    fn in_place_update_is_a_clobber() {
        let t = TaskSpec {
            id: TaskId(1),
            reads: vec![range(0, 1024)],
            writes: vec![range(512, 1024)],
            compute: SimTime::from_us(10.0),
            deps: vec![],
            half: Half::Bottom,
        };
        let report = analyze_idempotence(&t);
        assert!(!report.is_idempotent());
        assert_eq!(report.clobbers, vec![range(512, 512)]);
    }

    #[test]
    fn make_idempotent_versions_outputs_and_commits() {
        let t = TaskSpec {
            id: TaskId(1),
            reads: vec![range(0, 1024)],
            writes: vec![range(0, 1024)],
            compute: SimTime::from_us(10.0),
            deps: vec![],
            half: Half::Bottom,
        };
        let out = make_idempotent(&t, 0x10_0000, 99);
        assert_eq!(out.len(), 2);
        let main = &out[0];
        let commit = &out[1];
        assert!(analyze_idempotence(main).is_idempotent(), "main versioned");
        assert!(analyze_idempotence(commit).is_idempotent(), "commit safe");
        assert_eq!(main.writes, vec![range(0x10_0000, 1024)]);
        assert_eq!(commit.reads, vec![range(0x10_0000, 1024)]);
        assert_eq!(commit.writes, vec![range(0, 1024)]);
        assert_eq!(commit.deps, vec![TaskId(1)]);
    }

    #[test]
    fn already_idempotent_passes_through() {
        let t = TaskSpec::new(1, SimTime::from_us(1.0), vec![]);
        let out = make_idempotent(&t, 0x10_0000, 99);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, TaskId(1));
    }

    fn executors(n: usize) -> Vec<Executor> {
        (0..n)
            .map(|i| Executor {
                domain: i,
                speed: 1.0,
                half: Half::Bottom,
            })
            .collect()
    }

    fn no_failures() -> FailureSchedule {
        FailureSchedule::explicit(vec![])
    }

    #[test]
    fn failure_free_dag_respects_dependencies() {
        let rt = DagRuntime::new(executors(2), RecoveryMode::Idempotent);
        let tasks = vec![
            TaskSpec::new(1, SimTime::from_us(10.0), vec![]),
            TaskSpec::new(2, SimTime::from_us(10.0), vec![]),
            TaskSpec::new(3, SimTime::from_us(5.0), vec![1, 2]),
        ];
        let stats = rt.run(&tasks, &no_failures());
        // 1 and 2 in parallel (10us), then 3 (5us).
        assert_eq!(stats.makespan, SimTime::from_us(15.0));
        assert_eq!(stats.useful_work, SimTime::from_us(25.0));
        assert_eq!(stats.wasted_work, SimTime::ZERO);
        assert!(stats.correct);
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let rt = DagRuntime::new(executors(8), RecoveryMode::Idempotent);
        let tasks = vec![
            TaskSpec::new(1, SimTime::from_us(3.0), vec![]),
            TaskSpec::new(2, SimTime::from_us(4.0), vec![1]),
            TaskSpec::new(3, SimTime::from_us(5.0), vec![2]),
        ];
        let stats = rt.run(&tasks, &no_failures());
        assert_eq!(stats.makespan, SimTime::from_us(12.0));
    }

    #[test]
    fn idempotent_reexecution_recovers() {
        let rt = DagRuntime::new(executors(1), RecoveryMode::Idempotent);
        let tasks = vec![TaskSpec::new(1, SimTime::from_us(10.0), vec![])];
        // Failure at 6us, back at 8us: task restarts, finishes at 18us.
        let failures = FailureSchedule::explicit(vec![FailureEvent {
            at: SimTime::from_us(6.0),
            domain: 0,
            recovered_at: SimTime::from_us(8.0),
        }]);
        let stats = rt.run(&tasks, &failures);
        assert_eq!(stats.makespan, SimTime::from_us(18.0));
        assert_eq!(stats.reexecutions, 1);
        assert_eq!(stats.wasted_work, SimTime::from_us(6.0));
        assert!(stats.correct);
    }

    #[test]
    fn clobbering_task_reexecution_is_flagged_incorrect() {
        let rt = DagRuntime::new(executors(1), RecoveryMode::Idempotent);
        let mut t = TaskSpec::new(1, SimTime::from_us(10.0), vec![]);
        t.reads = vec![range(0, 64)];
        t.writes = vec![range(0, 64)];
        let failures = FailureSchedule::explicit(vec![FailureEvent {
            at: SimTime::from_us(5.0),
            domain: 0,
            recovered_at: SimTime::from_us(6.0),
        }]);
        let stats = rt.run(&[t.clone()], &failures);
        assert!(!stats.correct, "naive re-execution corrupts");
        // After versioning, the same failure is safe.
        let fixed = make_idempotent(&t, 0x10_0000, 99);
        let stats = rt.run(&fixed, &failures);
        assert!(stats.correct);
    }

    #[test]
    fn checkpoint_mode_loses_less_work_but_pays_overhead() {
        let tasks = vec![TaskSpec::new(1, SimTime::from_us(100.0), vec![])];
        let failures = FailureSchedule::explicit(vec![FailureEvent {
            at: SimTime::from_us(90.0),
            domain: 0,
            recovered_at: SimTime::from_us(95.0),
        }]);
        let idem = DagRuntime::new(executors(1), RecoveryMode::Idempotent).run(&tasks, &failures);
        let ckpt = DagRuntime::new(
            executors(1),
            RecoveryMode::Checkpoint {
                interval: SimTime::from_us(10.0),
                cost: SimTime::from_us(1.0),
            },
        )
        .run(&tasks, &failures);
        assert!(idem.wasted_work > ckpt.wasted_work, "checkpoints save work");
        assert!(ckpt.checkpoint_overhead > SimTime::ZERO);
        assert_eq!(idem.checkpoint_overhead, SimTime::ZERO);
    }

    #[test]
    fn top_half_tasks_need_top_executors() {
        let mut execs = executors(1);
        execs.push(Executor {
            domain: 1,
            speed: 1.0,
            half: Half::Top,
        });
        let rt = DagRuntime::new(execs, RecoveryMode::Idempotent);
        let mut dispatch = TaskSpec::new(1, SimTime::from_us(1.0), vec![]);
        dispatch.half = Half::Top;
        let bulk = TaskSpec::new(2, SimTime::from_us(10.0), vec![1]);
        let stats = rt.run(&[dispatch, bulk], &no_failures());
        assert_eq!(stats.makespan, SimTime::from_us(11.0));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn dependency_cycles_detected() {
        let rt = DagRuntime::new(executors(1), RecoveryMode::Idempotent);
        let tasks = vec![
            TaskSpec::new(1, SimTime::from_us(1.0), vec![2]),
            TaskSpec::new(2, SimTime::from_us(1.0), vec![1]),
        ];
        rt.run(&tasks, &no_failures());
    }
}
