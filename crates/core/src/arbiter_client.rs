//! The programmable arbiter interface (design principle #4).
//!
//! "FCC would incorporate a programmable interface with the control lane
//! to query, reserve, and reclaim credits, and expose it to the
//! application layer via some programming abstraction (such as
//! distributed futures)" (§4 DP#4). [`ArbiterClient`] turns the raw
//! request/response messages of `fcc-fabric`'s [`FabricArbiter`](fcc_fabric::arbiter::FabricArbiter) into
//! futures: the caller submits a [`ClientRequest`] naming a future id and
//! receives a [`FutureResolved`] when the arbiter answers.

use std::collections::HashMap;

use fcc_fabric::arbiter::{ArbiterOp, ArbiterRequest, ArbiterResponse, ArbiterResult};
use fcc_sim::{Component, ComponentId, Counter, Ctx, Histogram, Msg, SimTime};

/// A request submitted through the client.
#[derive(Debug, Clone, Copy)]
pub struct ClientRequest {
    /// The arbiter operation.
    pub op: ArbiterOp,
    /// Future to resolve.
    pub future_id: u64,
    /// Who receives the [`FutureResolved`].
    pub reply_to: ComponentId,
}

/// Resolution of a distributed future.
#[derive(Debug, Clone, Copy)]
pub struct FutureResolved {
    /// The future.
    pub future_id: u64,
    /// Whether the operation succeeded (granted/reclaimed/answered).
    pub ok: bool,
}

/// Detailed resolution (kept by the client for inspection).
#[derive(Debug, Clone, Copy)]
pub struct Resolution {
    /// The arbiter's answer.
    pub result: ArbiterResult,
    /// Round-trip time over the control lane.
    pub rtt: SimTime,
}

/// The client-side endpoint of the dedicated control lane.
pub struct ArbiterClient {
    arbiter: ComponentId,
    /// One-way latency of the dedicated lane (client side).
    lane_latency: SimTime,
    next_tag: u64,
    pending: HashMap<u64, (u64, ComponentId, SimTime)>,
    resolutions: HashMap<u64, Resolution>,
    /// Requests issued.
    pub issued: Counter,
    /// Control-lane RTT distribution (ps).
    pub rtt: Histogram,
}

impl ArbiterClient {
    /// Creates a client bound to an arbiter over a lane with the given
    /// one-way latency.
    pub fn new(arbiter: ComponentId, lane_latency: SimTime) -> Self {
        ArbiterClient {
            arbiter,
            lane_latency,
            next_tag: 0,
            pending: HashMap::new(),
            resolutions: HashMap::new(),
            issued: Counter::new(),
            rtt: Histogram::new(),
        }
    }

    /// The stored resolution of a future, if it has resolved.
    pub fn resolution(&self, future_id: u64) -> Option<Resolution> {
        self.resolutions.get(&future_id).copied()
    }
}

impl Component for ArbiterClient {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<ClientRequest>() {
            Ok(req) => {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.pending
                    .insert(tag, (req.future_id, req.reply_to, ctx.now()));
                self.issued.inc();
                ctx.send(
                    self.arbiter,
                    self.lane_latency,
                    ArbiterRequest {
                        op: req.op,
                        tag,
                        reply_to: ctx.self_id(),
                    },
                );
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<ArbiterResponse>() {
            Ok(rsp) => {
                // The arbiter only echoes tags this client issued.
                #[allow(clippy::expect_used)]
                let (future_id, reply_to, issued_at) = self
                    .pending
                    .remove(&rsp.tag)
                    .expect("response for unknown tag");
                let rtt = ctx.now() - issued_at;
                self.rtt.record_time(rtt);
                let ok = matches!(
                    rsp.result,
                    ArbiterResult::Granted { .. }
                        | ArbiterResult::Reclaimed
                        | ArbiterResult::Info { .. }
                );
                self.resolutions.insert(
                    future_id,
                    Resolution {
                        result: rsp.result,
                        rtt,
                    },
                );
                ctx.send(reply_to, SimTime::ZERO, FutureResolved { future_id, ok });
            }
            Err(m) => panic!("arbiter client: unexpected message {}", m.type_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use fcc_fabric::arbiter::FabricArbiter;
    use fcc_fabric::switch::FlowId;
    use fcc_proto::addr::NodeId;
    use fcc_sim::Engine;

    use super::*;

    struct Waiter {
        resolved: Vec<FutureResolved>,
    }

    impl Component for Waiter {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.resolved
                .push(msg.downcast::<FutureResolved>().expect("future"));
        }
    }

    fn flow() -> FlowId {
        FlowId {
            src: NodeId(1),
            dst: NodeId(9),
        }
    }

    fn setup() -> (Engine, ComponentId, ComponentId) {
        let mut engine = Engine::new(3);
        let sink = engine.add_component("waiter", Waiter { resolved: vec![] });
        // The arbiter needs somewhere to install rates: the waiter absorbs
        // nothing here because the flow path is registered against a dummy
        // switch component (the waiter itself would panic); use capacity
        // only (query path) plus a nop switch.
        struct NopSwitch;
        impl Component for NopSwitch {
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
        }
        let sw = engine.add_component("sw", NopSwitch);
        let mut arb = FabricArbiter::new(SimTime::from_ns(100.0));
        arb.register_path(flow(), vec![(sw, 0)]);
        arb.set_capacity((sw, 0), 100.0);
        let arb = engine.add_component("arb", arb);
        let client =
            engine.add_component("client", ArbiterClient::new(arb, SimTime::from_ns(100.0)));
        (engine, client, sink)
    }

    #[test]
    fn query_resolves_future_with_200ns_rtt() {
        let (mut engine, client, sink) = setup();
        engine.post(
            client,
            SimTime::ZERO,
            ClientRequest {
                op: ArbiterOp::Query { flow: flow() },
                future_id: 5,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let w = engine.component::<Waiter>(sink);
        assert_eq!(w.resolved.len(), 1);
        assert!(w.resolved[0].ok);
        let c = engine.component::<ArbiterClient>(client);
        let res = c.resolution(5).expect("resolved");
        // The paper's claim: the 64B control-flit RTT is up to 200 ns.
        assert_eq!(res.rtt, SimTime::from_ns(200.0));
    }

    #[test]
    fn reserve_then_reclaim_round_trip() {
        let (mut engine, client, sink) = setup();
        engine.post(
            client,
            SimTime::ZERO,
            ClientRequest {
                op: ArbiterOp::Reserve {
                    flow: flow(),
                    gbps: 50.0,
                    burst_bytes: 4096,
                },
                future_id: 1,
                reply_to: sink,
            },
        );
        engine.post(
            client,
            SimTime::from_us(1.0),
            ClientRequest {
                op: ArbiterOp::Reclaim { flow: flow() },
                future_id: 2,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let c = engine.component::<ArbiterClient>(client);
        assert!(matches!(
            c.resolution(1).expect("granted").result,
            ArbiterResult::Granted { .. }
        ));
        assert!(matches!(
            c.resolution(2).expect("reclaimed").result,
            ArbiterResult::Reclaimed
        ));
    }

    #[test]
    fn denial_resolves_not_ok() {
        let (mut engine, client, sink) = setup();
        engine.post(
            client,
            SimTime::ZERO,
            ClientRequest {
                op: ArbiterOp::Reserve {
                    flow: flow(),
                    gbps: 500.0,
                    burst_bytes: 4096,
                },
                future_id: 9,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let w = engine.component::<Waiter>(sink);
        assert!(!w.resolved[0].ok);
    }
}
