//! Per-rule fixtures: positive (fires), negative (quiet), and
//! suppressed (fires, then silenced by an inline allow) for each of
//! R1–R5, plus manifest fixtures for R6.
//!
//! Fixture sources live in raw strings; the lexer sees them exactly as
//! file contents. `det()` lints as deterministic-core library code,
//! `tooling()` as measurement code.

use fcc_lint::{lint_source, manifest, rules, FileKind, RuleId};

fn det(src: &str) -> Vec<RuleId> {
    lint_source("fcc-fabric", FileKind::Lib, "fixture.rs", src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

fn tooling(src: &str) -> Vec<RuleId> {
    lint_source("fcc-bench", FileKind::Lib, "fixture.rs", src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// ----------------------------------------------------------------- R1 --

#[test]
fn r1_fires_on_hashmap_method_iteration() {
    let src = r#"
        use std::collections::HashMap;
        struct S { routes: HashMap<u64, u32> }
        impl S {
            fn tick(&mut self) {
                for (k, v) in self.routes.iter() {
                    self.emit(*k, *v);
                }
            }
        }
    "#;
    assert_eq!(det(src), vec![RuleId::NondetCollectionIter]);
}

#[test]
fn r1_fires_on_direct_for_loop_and_drain() {
    let src = r#"
        fn f(pending: &mut std::collections::HashSet<u64>) {
            let mut acc = Vec::new();
            for id in pending.drain() {
                acc.push(id);
            }
        }
    "#;
    let rules = det(src);
    assert!(rules.contains(&RuleId::NondetCollectionIter), "{rules:?}");
}

#[test]
fn r1_quiet_on_btreemap_and_order_insensitive_sinks() {
    let src = r#"
        use std::collections::{BTreeMap, HashMap};
        struct S { ordered: BTreeMap<u64, u32>, counts: HashMap<u64, u32> }
        impl S {
            fn ok(&self) -> usize {
                for (k, v) in self.ordered.iter() { self.emit(*k, *v); }
                // Order-insensitive aggregation over a HashMap is fine.
                self.counts.values().map(|v| *v as usize).sum()
            }
        }
    "#;
    assert_eq!(det(src), vec![]);
}

#[test]
fn r1_quiet_when_sorted_in_same_statement() {
    let src = r#"
        fn f(m: &std::collections::HashMap<u64, u32>) -> Vec<u64> {
            let mut v: Vec<u64> = m.keys().copied().collect::<Vec<_>>().sorted();
            v
        }
    "#;
    assert_eq!(det(src), vec![]);
}

#[test]
fn r1_quiet_in_tooling_and_tests() {
    let src = r#"
        fn f(m: &std::collections::HashMap<u64, u32>) {
            for (k, v) in m.iter() { println!("{k} {v}"); }
        }
    "#;
    assert_eq!(tooling(src), vec![]);
    assert_eq!(
        lint_source("fcc-fabric", FileKind::Test, "t.rs", src),
        vec![]
    );
}

#[test]
fn r1_suppressed_with_reason() {
    let src = r#"
        fn f(m: &std::collections::HashMap<u64, u32>) -> Vec<u64> {
            // fcc-lint: allow(nondet-collection-iter) -- collected then sorted on the next line
            let mut v: Vec<u64> = m.keys().copied().collect();
            v.sort_unstable();
            v
        }
    "#;
    assert_eq!(det(src), vec![]);
}

#[test]
fn r1_suppression_without_reason_does_not_silence() {
    let src = r#"
        fn f(m: &std::collections::HashMap<u64, u32>) -> Vec<u64> {
            // fcc-lint: allow(nondet-collection-iter)
            let v: Vec<u64> = m.keys().copied().collect();
            v
        }
    "#;
    let rules = det(src);
    assert!(rules.contains(&RuleId::NondetCollectionIter), "{rules:?}");
    assert!(rules.contains(&RuleId::MalformedSuppression), "{rules:?}");
}

// ----------------------------------------------------------------- R2 --

#[test]
fn r2_fires_on_instant_import_and_call() {
    let import = "use std::time::Instant;\n";
    assert_eq!(det(import), vec![RuleId::WallClockInSim]);
    let call = r#"
        fn f() -> u64 {
            let t0 = Instant::now();
            t0.elapsed().as_nanos() as u64
        }
    "#;
    assert_eq!(det(call), vec![RuleId::WallClockInSim]);
    let sys = "fn f() { let _ = std::time::SystemTime::now(); }";
    assert_eq!(det(sys), vec![RuleId::WallClockInSim]);
}

#[test]
fn r2_quiet_on_enum_variant_named_instant() {
    // fcc-telemetry's Chrome trace-event kind — must not false-positive.
    let src = r#"
        pub enum SpanKind { Complete, Instant }
        fn f(k: SpanKind) -> bool { matches!(k, SpanKind::Instant) }
    "#;
    assert_eq!(det(src), vec![]);
}

#[test]
fn r2_quiet_in_measurement_crates() {
    assert_eq!(tooling("use std::time::Instant;\n"), vec![]);
}

#[test]
fn r2_suppressed_with_reason() {
    let src = "// fcc-lint: allow(wall-clock-in-sim) -- host-side progress logging only\nuse std::time::Instant;\n";
    assert_eq!(det(src), vec![]);
}

// ----------------------------------------------------------------- R3 --

#[test]
fn r3_fires_everywhere_even_in_tooling_and_tests() {
    let src = "fn f() { let mut rng = rand::thread_rng(); }";
    assert_eq!(det(src), vec![RuleId::EntropyRng]);
    assert_eq!(tooling(src), vec![RuleId::EntropyRng]);
    assert_eq!(
        lint_source("fcc-bench", FileKind::Test, "t.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
        vec![RuleId::EntropyRng]
    );
    assert_eq!(
        det("fn g() { let r = SmallRng::from_entropy(); }"),
        vec![RuleId::EntropyRng]
    );
    assert_eq!(
        det("fn h() { let mut r = OsRng; }"),
        vec![RuleId::EntropyRng]
    );
}

#[test]
fn r3_quiet_on_seeded_rng() {
    let src = "fn f(seed: u64) { let rng = SmallRng::seed_from_u64(seed); }";
    assert_eq!(det(src), vec![]);
    assert_eq!(tooling(src), vec![]);
}

#[test]
fn r3_suppressed_with_reason() {
    let src = "fn f() {\n    // fcc-lint: allow(entropy-rng) -- fixture for the negative test\n    let mut rng = rand::thread_rng();\n}";
    assert_eq!(det(src), vec![]);
}

// ----------------------------------------------------------------- R4 --

#[test]
fn r4_fires_on_simtime_truncation() {
    let src = r#"
        fn f(deadline: SimTime) -> u32 {
            deadline.as_ps() as u32
        }
    "#;
    assert_eq!(det(src), vec![RuleId::LossyTimeCast]);
    let named = "fn g(delay_ps: u64) -> usize { delay_ps as usize }";
    assert_eq!(det(named), vec![RuleId::LossyTimeCast]);
    let binding = r#"
        fn h() {
            let t = SimTime::from_ns(5.0);
            let _ = t as i32;
        }
    "#;
    assert_eq!(det(binding), vec![RuleId::LossyTimeCast]);
}

#[test]
fn r4_quiet_on_widening_or_untimed_casts() {
    assert_eq!(det("fn f(t: SimTime) -> u64 { t.as_ps() as u64 }"), vec![]);
    assert_eq!(det("fn g(port: u64) -> usize { port as usize }"), vec![]);
}

#[test]
fn r4_suppressed_with_reason() {
    let src = "fn f(delay_ps: u64) -> u32 {\n    // fcc-lint: allow(lossy-time-cast) -- bounded by config validation to < 4ms\n    delay_ps as u32\n}";
    assert_eq!(det(src), vec![]);
}

// ----------------------------------------------------------------- R5 --

#[test]
fn r5_fires_on_panic_family_in_det_lib() {
    assert_eq!(
        det("fn f() { panic!(\"boom\"); }"),
        vec![RuleId::PanicInLib]
    );
    assert_eq!(det("fn f() { unreachable!(); }"), vec![RuleId::PanicInLib]);
    assert_eq!(det("fn f() { todo!(); }"), vec![RuleId::PanicInLib]);
    assert_eq!(
        det("fn f() { unimplemented!(); }"),
        vec![RuleId::PanicInLib]
    );
}

#[test]
fn r5_quiet_in_tests_tooling_and_cfg_test_modules() {
    let src = "fn f() { panic!(\"boom\"); }";
    assert_eq!(tooling(src), vec![]);
    assert_eq!(lint_source("fcc-sim", FileKind::Test, "t.rs", src), vec![]);
    // A #[cfg(test)] module inside a det-core library file is exempt.
    let gated = r#"
        pub fn lib_code() -> u32 { 7 }

        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                if super::lib_code() != 7 { panic!("nope"); }
            }
        }
    "#;
    assert_eq!(det(gated), vec![]);
}

#[test]
fn r5_suppressed_with_reason() {
    let src = "fn f() {\n    // fcc-lint: allow(panic-in-lib) -- dispatch invariant: only wired message types arrive\n    panic!(\"unexpected\");\n}";
    assert_eq!(det(src), vec![]);
}

#[test]
fn r5_assert_macros_are_not_flagged() {
    // assert!/debug_assert! are the sanctioned invariant mechanism.
    let src =
        "fn f(x: u32) { assert!(x > 0, \"x must be positive\"); debug_assert_eq!(x % 2, 0); }";
    assert_eq!(det(src), vec![]);
}

// ----------------------------------------------------------------- R6 --

#[test]
fn r6_flags_layering_violation() {
    let m = manifest::parse(
        "[package]\nname = \"fcc-proto\"\n[dependencies]\nfcc-sim.workspace = true\nfcc-fabric.workspace = true\n",
    );
    let findings = rules::lint_manifest("fcc-proto", "crates/proto/Cargo.toml", &m);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, RuleId::Layering);
    assert!(findings[0].excerpt.contains("fcc-proto -> fcc-fabric"));
}

#[test]
fn r6_quiet_on_allowed_edges_and_tooling() {
    let proto = manifest::parse("[dependencies]\nfcc-sim.workspace = true\n");
    assert!(rules::lint_manifest("fcc-proto", "p", &proto).is_empty());
    let bench =
        manifest::parse("[dependencies]\nfcc-sim.workspace = true\nfcc-elastic.workspace = true\n");
    assert!(rules::lint_manifest("fcc-bench", "b", &bench).is_empty());
}

#[test]
fn r6_sim_depends_on_no_fcc_crate() {
    let m = manifest::parse("[dependencies]\nfcc-telemetry.workspace = true\n");
    let findings = rules::lint_manifest("fcc-sim", "crates/sim/Cargo.toml", &m);
    assert_eq!(findings.len(), 1);
}

// ------------------------------------------------------ lexer corpus --

#[test]
fn strings_and_comments_never_false_positive() {
    // Every banned pattern appears — but only inside literals and
    // comments, so the file must lint clean even as det-core lib code.
    let src = r###"
        // This comment mentions HashMap.iter(), thread_rng(), Instant::now(),
        // panic!() and unreachable!() — none of it is code.
        /* Block comment: for (k, v) in map.iter() { panic!("x") } */
        /// Doc comment: `SystemTime::now()` and `OsRng` are banned.
        pub fn describe() -> &'static str {
            let s = "HashMap panic! thread_rng Instant::now SystemTime";
            let raw = r#"for x in set.drain() { unreachable!() }"#;
            let c = 'p';
            let b = b"from_entropy";
            if s.len() > raw.len() { s } else { "ok" }
        }
    "###;
    assert_eq!(det(src), vec![]);
}

#[test]
fn suppression_applies_to_same_line_and_next_line_only() {
    // The allow sits two lines above the violation: must NOT silence.
    let src = "fn f() {\n    // fcc-lint: allow(panic-in-lib) -- too far away\n    let x = 1;\n    panic!(\"{x}\");\n}";
    assert_eq!(det(src), vec![RuleId::PanicInLib]);
    // Trailing on the same line: silences.
    let same =
        "fn f() { panic!(\"x\"); } // fcc-lint: allow(panic-in-lib) -- invariant documented here";
    assert_eq!(det(same), vec![]);
}

#[test]
fn findings_carry_file_line_and_excerpt() {
    let src = "fn f() {\n    let mut rng = rand::thread_rng();\n}";
    let findings = lint_source("fcc-sim", FileKind::Lib, "crates/sim/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.file, "crates/sim/src/x.rs");
    assert_eq!(f.line, 2);
    assert_eq!(f.excerpt, "let mut rng = rand::thread_rng();");
    assert!(f
        .render_text()
        .starts_with("crates/sim/src/x.rs:2: entropy-rng [R3]:"));
}
