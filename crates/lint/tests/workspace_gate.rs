//! Integration test: run `fcc-lint` over the live workspace and assert
//! the gate holds — zero unbaselined findings, no stale baseline
//! entries, and a deterministic report.

use std::path::PathBuf;

use fcc_lint::{baseline::Baseline, workspace};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest_dir)
}

#[test]
fn live_workspace_has_zero_unbaselined_findings() {
    let root = repo_root();
    let (findings, errors) = match workspace::run(&root) {
        Ok(r) => r,
        Err(e) => panic!("lint run failed: {e}"),
    };
    assert!(errors.is_empty(), "io errors during lint: {errors:?}");

    let baseline_path = root.join("lint_baseline.json");
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => panic!("read {}: {e}", baseline_path.display()),
    };
    let baseline = match Baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => panic!("baseline parse: {e}"),
    };
    let res = baseline.match_findings(findings);

    let rendered: Vec<String> = res.new.iter().map(|f| f.render_text()).collect();
    assert!(
        res.new.is_empty(),
        "unbaselined findings — fix, suppress with a reason, or \
         `fcc-lint --update-baseline`:\n{}",
        rendered.join("\n")
    );
    assert!(
        res.stale.is_empty(),
        "stale baseline entries (a grandfathered finding was fixed — \
         shrink the baseline with `fcc-lint --update-baseline`):\n{}",
        res.stale.join("\n")
    );
}

#[test]
fn live_workspace_layering_is_clean() {
    // R6 across every member manifest: already covered by the zero-
    // findings assertion above, but spelled out so a layering break
    // fails with a message naming the edge.
    let root = repo_root();
    let (findings, _) = match workspace::run(&root) {
        Ok(r) => r,
        Err(e) => panic!("lint run failed: {e}"),
    };
    let layering: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == fcc_lint::RuleId::Layering)
        .collect();
    assert!(layering.is_empty(), "layering violations: {layering:?}");
}

#[test]
fn lint_run_is_deterministic() {
    // The linter holds itself to the contract it enforces: two runs
    // over the same tree produce identical findings in identical order.
    let root = repo_root();
    let a = match workspace::run(&root) {
        Ok((f, _)) => f,
        Err(e) => panic!("{e}"),
    };
    let b = match workspace::run(&root) {
        Ok((f, _)) => f,
        Err(e) => panic!("{e}"),
    };
    assert_eq!(a, b);
}

#[test]
fn baseline_shrinks_never_grows_r1() {
    // Guard the satellite win: the R1 class (the rebalance bug) is
    // fully fixed in deterministic-core crates — the baseline must not
    // quietly re-grandfather it.
    let root = repo_root();
    let text = match std::fs::read_to_string(root.join("lint_baseline.json")) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    };
    assert!(
        !text.contains("nondet-collection-iter"),
        "lint_baseline.json must stay free of R1 entries — convert the \
         collection to BTreeMap/BTreeSet or sort explicitly"
    );
    assert!(
        !text.contains("wall-clock-in-sim") && !text.contains("entropy-rng"),
        "R2/R3 must never be grandfathered"
    );
}
