//! Minimal `Cargo.toml` scanner for the layering rule (R6).
//!
//! We only need two facts per manifest: the package name and which
//! `fcc-*` crates appear under `[dependencies]`. A line-oriented
//! section scanner is enough for the workspace's hand-written TOML;
//! no external parser is pulled in (see crate docs).

/// The subset of a `Cargo.toml` the linter cares about.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// `package.name`, if present (the virtual workspace root has one
    /// too, since the root `Cargo.toml` also defines the `fcc` facade).
    pub name: Option<String>,
    /// `fcc-*` keys under `[dependencies]`, in file order.
    pub fcc_deps: Vec<String>,
    /// `fcc-*` keys under `[dev-dependencies]` (reported but not
    /// layering-checked: test-only edges cannot leak into the sim).
    pub fcc_dev_deps: Vec<String>,
}

/// Scans manifest text. Never fails: unrecognized lines are skipped.
pub fn parse(text: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut m = Manifest::default();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        // `fcc-sim.workspace = true` — a dotted key names the dep
        // `fcc-sim`; strip everything after the first dot.
        let key = key.trim().trim_matches('"');
        let key = key.split('.').next().unwrap_or(key);
        match section {
            Section::Package if key == "name" => {
                m.name = Some(value.trim().trim_matches('"').to_string());
            }
            Section::Deps if key.starts_with("fcc-") => m.fcc_deps.push(key.to_string()),
            Section::DevDeps if key.starts_with("fcc-") => m.fcc_dev_deps.push(key.to_string()),
            _ => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_and_fcc_deps() {
        let m = parse(
            r#"
[package]
name = "fcc-proto"
version.workspace = true

[dependencies]
fcc-sim.workspace = true
fcc-telemetry.workspace = true
serde.workspace = true

[dev-dependencies]
fcc-fabric.workspace = true
rand.workspace = true
"#,
        );
        assert_eq!(m.name.as_deref(), Some("fcc-proto"));
        assert_eq!(m.fcc_deps, vec!["fcc-sim", "fcc-telemetry"]);
        assert_eq!(m.fcc_dev_deps, vec!["fcc-fabric"]);
    }

    #[test]
    fn dotted_keys_resolve_to_base_name() {
        // `fcc-sim.workspace = true` must register as `fcc-sim`.
        let m = parse("[dependencies]\nfcc-sim.workspace = true\n");
        assert_eq!(m.fcc_deps, vec!["fcc-sim"]);
    }
}
