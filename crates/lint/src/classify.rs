//! Crate classification and the layering DAG.
//!
//! Every workspace crate is either **deterministic-core** (its code runs
//! inside the simulation and must be bit-for-bit replayable) or
//! **measurement/tooling** (it observes wall-clock time, spawns OS
//! threads, and talks to the host — `fcc-bench`, `fcc-verify`, and this
//! linter itself). Rules consult the class so that, e.g.,
//! `Instant::now()` is legal in the bench harness but a gate failure in
//! `fcc-sim`.

/// Determinism class of a workspace crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Simulation-side code: must be deterministic under a fixed seed.
    DeterministicCore,
    /// Harness/verifier/linter code: may observe the host environment.
    Tooling,
}

/// What part of a crate a source file belongs to; rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` excluding `src/bin` — library code shipped to dependents.
    Lib,
    /// `src/bin/**` — binary entry points.
    Bin,
    /// `tests/**`, `benches/**`, `examples/**` — never linked into the sim.
    Test,
}

/// Classifies a crate by its package name. Unknown `fcc-*` crates
/// default to `DeterministicCore`: a new simulation crate must opt
/// *out* of the determinism contract by being added to the tooling
/// list here, not silently escape it.
pub fn classify(package: &str) -> CrateClass {
    match package {
        "fcc-bench" | "fcc-verify" | "fcc-lint" => CrateClass::Tooling,
        _ => CrateClass::DeterministicCore,
    }
}

/// The allowed `fcc-*` dependency edges, i.e. the layering DAG.
///
/// Returns `None` when the crate may depend on every workspace crate
/// (measurement/tooling and the root facade). Otherwise the returned
/// slice is the exhaustive allowlist: an edge not listed here is a
/// layering violation (R6), even if it would not create a cycle —
/// the point is to keep lower layers ignorant of upper ones.
pub fn allowed_deps(package: &str) -> Option<&'static [&'static str]> {
    const NONE: &[&str] = &[];
    const SIM: &[&str] = &["fcc-sim"];
    const TELEMETRY: &[&str] = SIM;
    const WORKLOADS: &[&str] = SIM;
    const PROTO: &[&str] = &["fcc-sim", "fcc-telemetry"];
    const SCHED: &[&str] = &["fcc-sim", "fcc-proto"];
    const FABRIC: &[&str] = &["fcc-sim", "fcc-telemetry", "fcc-proto", "fcc-sched"];
    const MEMNODE: &[&str] = &["fcc-sim", "fcc-telemetry", "fcc-proto", "fcc-fabric"];
    const CACHE: &[&str] = &[
        "fcc-sim",
        "fcc-telemetry",
        "fcc-proto",
        "fcc-fabric",
        "fcc-memnode",
    ];
    const CORE: &[&str] = &[
        "fcc-sim",
        "fcc-telemetry",
        "fcc-proto",
        "fcc-sched",
        "fcc-fabric",
        "fcc-memnode",
        "fcc-cache",
        "fcc-workloads",
    ];
    const SERVE: &[&str] = &[
        "fcc-sim",
        "fcc-telemetry",
        "fcc-fabric",
        "fcc-memnode",
        "fcc-core",
        "fcc-workloads",
    ];
    const UPPER: &[&str] = &[
        "fcc-sim",
        "fcc-telemetry",
        "fcc-proto",
        "fcc-fabric",
        "fcc-memnode",
        "fcc-cache",
        "fcc-core",
        "fcc-workloads",
    ];
    match package {
        "fcc-sim" => Some(NONE),
        "fcc-lint" => Some(NONE),
        "fcc-telemetry" => Some(TELEMETRY),
        "fcc-workloads" => Some(WORKLOADS),
        "fcc-proto" => Some(PROTO),
        "fcc-sched" => Some(SCHED),
        "fcc-fabric" => Some(FABRIC),
        "fcc-memnode" => Some(MEMNODE),
        "fcc-cache" => Some(CACHE),
        "fcc-core" => Some(CORE),
        "fcc-serve" => Some(SERVE),
        "fcc-elastic" | "fcc-baseband" => Some(UPPER),
        // Tooling and the root facade may depend on anything.
        "fcc-bench" | "fcc-verify" | "fcc" => None,
        // An unknown crate gets no fcc deps until it is placed in the
        // DAG here — same fail-closed posture as `classify`.
        _ => Some(NONE),
    }
}

/// Classifies a file by its path *within* a crate directory
/// (e.g. `src/lib.rs`, `src/bin/experiments.rs`, `tests/parallel.rs`).
pub fn file_kind(rel_path: &str) -> FileKind {
    let p = rel_path.replace('\\', "/");
    if p.starts_with("tests/") || p.starts_with("benches/") || p.starts_with("examples/") {
        FileKind::Test
    } else if p.starts_with("src/bin/") || p == "build.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tooling_crates() {
        assert_eq!(classify("fcc-bench"), CrateClass::Tooling);
        assert_eq!(classify("fcc-verify"), CrateClass::Tooling);
        assert_eq!(classify("fcc-lint"), CrateClass::Tooling);
    }

    #[test]
    fn unknown_crates_fail_closed() {
        assert_eq!(classify("fcc-newthing"), CrateClass::DeterministicCore);
        assert_eq!(allowed_deps("fcc-newthing"), Some(&[][..]));
    }

    #[test]
    fn layering_examples_from_the_contract() {
        // fcc-proto may depend on fcc-sim but never on fcc-fabric.
        let proto = allowed_deps("fcc-proto").unwrap_or(&[]);
        assert!(proto.contains(&"fcc-sim"));
        assert!(!proto.contains(&"fcc-fabric"));
        // fcc-sched sits below the fabric: the switch pulls policy from
        // it, never the other way around.
        let sched = allowed_deps("fcc-sched").unwrap_or(&[]);
        assert!(sched.contains(&"fcc-proto"));
        assert!(!sched.contains(&"fcc-fabric"));
        let fabric = allowed_deps("fcc-fabric").unwrap_or(&[]);
        assert!(fabric.contains(&"fcc-sched"));
        // fcc-serve is an application over the runtime: it may use the
        // core and the fabric but never the bench harness or elasticity.
        let serve = allowed_deps("fcc-serve").unwrap_or(&[]);
        assert!(serve.contains(&"fcc-core"));
        assert!(serve.contains(&"fcc-workloads"));
        assert!(!serve.contains(&"fcc-elastic"));
        assert_eq!(classify("fcc-serve"), CrateClass::DeterministicCore);
        // fcc-sim depends on no fcc crate.
        assert_eq!(allowed_deps("fcc-sim"), Some(&[][..]));
        // Tooling is unrestricted.
        assert_eq!(allowed_deps("fcc-bench"), None);
    }

    #[test]
    fn file_kinds() {
        assert_eq!(file_kind("src/lib.rs"), FileKind::Lib);
        assert_eq!(file_kind("src/switch.rs"), FileKind::Lib);
        assert_eq!(file_kind("src/bin/experiments.rs"), FileKind::Bin);
        assert_eq!(file_kind("tests/parallel.rs"), FileKind::Test);
        assert_eq!(file_kind("benches/engine.rs"), FileKind::Test);
    }
}
