//! The determinism rule engine: R1–R6 over a lexed token stream.
//!
//! Each rule is a pattern over [`crate::lexer::Token`]s, scoped by the
//! crate's determinism class and the file's kind (library / binary /
//! test). The engine is deliberately heuristic — it has no type
//! information — but it is tuned so that every *true* instance of the
//! bug class it targets is caught, and the rare false positive is
//! silenced with an inline `// fcc-lint: allow(rule) -- reason`.

use crate::classify::{CrateClass, FileKind};
use crate::lexer::{self, Suppression, TokKind, Token};
use crate::report::{Finding, RuleId};

use std::collections::BTreeSet;
use std::ops::Range;

/// Everything the per-file rules need to know about their context.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx<'a> {
    /// Package name, e.g. `fcc-fabric`.
    pub package: &'a str,
    /// Determinism class of the package.
    pub class: CrateClass,
    /// Library / binary / test classification of this file.
    pub kind: FileKind,
    /// Workspace-relative path, used in findings.
    pub path: &'a str,
}

/// Methods whose call on a `HashMap`/`HashSet` receiver yields
/// arbitrary-order iteration (the `rebalance` bug class).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Order-insensitive sinks: if the iterator chain ends in one of these
/// within the same statement, iteration order cannot leak into state,
/// so R1 stays quiet (`map.values().sum()` is deterministic).
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    "sum", "count", "len", "min", "max", "all", "any", "product", "is_empty",
];

/// Sorting calls that launder an unordered iteration within the same
/// statement (`collect` + `sort` idiom).
const SORT_METHODS: &[&str] = &["sort", "sort_by", "sort_by_key", "sort_unstable", "sorted"];

/// Casts that truncate a 64-bit picosecond value (R4).
const LOSSY_TARGETS: &[&str] = &["u32", "i32", "usize", "u16", "i16", "u8", "i8"];

/// Methods that expose raw picoseconds from a `SimTime`.
const PS_METHODS: &[&str] = &["ps", "as_ps", "picos", "as_picos"];

/// Lints one source file. `src` is the file contents.
pub fn lint_file(ctx: FileCtx<'_>, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let masked = cfg_test_lines(&lexed.tokens);
    let mut findings = Vec::new();

    // Malformed suppressions are findings in their own right; valid
    // ones build the suppression table consulted at the end.
    for s in &lexed.suppressions {
        if s.rules.is_empty() || !s.has_reason {
            findings.push(finding(
                &ctx,
                RuleId::MalformedSuppression,
                s.line,
                &lines,
                "suppression must name rules and give a reason: \
                 `// fcc-lint: allow(rule) -- reason`",
            ));
        }
    }

    let in_scope = |line: u32| !masked.iter().any(|r| r.contains(&line));
    let det_lib = ctx.class == CrateClass::DeterministicCore && ctx.kind != FileKind::Test;

    if det_lib {
        r1_nondet_collection_iter(&ctx, &lexed.tokens, &lines, &in_scope, &mut findings);
        r2_wall_clock(&ctx, &lexed.tokens, &lines, &in_scope, &mut findings);
        r4_lossy_time_cast(&ctx, &lexed.tokens, &lines, &in_scope, &mut findings);
    }
    if det_lib && ctx.kind == FileKind::Lib {
        r5_panic_in_lib(&ctx, &lexed.tokens, &lines, &in_scope, &mut findings);
    }
    // R3 applies to every crate and every file kind, including tests:
    // an entropy-seeded RNG anywhere makes a run unreproducible.
    r3_entropy_rng(&ctx, &lexed.tokens, &lines, &mut findings);

    apply_suppressions(&lexed.suppressions, &mut findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

fn finding(ctx: &FileCtx<'_>, rule: RuleId, line: u32, lines: &[&str], msg: &str) -> Finding {
    let excerpt = lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim())
        .unwrap_or("")
        .to_string();
    Finding {
        rule,
        file: ctx.path.to_string(),
        line,
        excerpt,
        message: msg.to_string(),
    }
}

/// Removes findings covered by a well-formed suppression on the same
/// line or on the line directly above (a standalone comment line).
fn apply_suppressions(sups: &[Suppression], findings: &mut Vec<Finding>) {
    findings.retain(|f| {
        // Malformed-suppression diagnostics cannot themselves be
        // suppressed — that would make the reason requirement optional.
        if f.rule == RuleId::MalformedSuppression {
            return true;
        }
        !sups.iter().any(|s| {
            s.has_reason
                && (s.line == f.line || s.line + 1 == f.line)
                && s.rules
                    .iter()
                    .any(|r| r == f.rule.name() || r.eq_ignore_ascii_case(f.rule.code()))
        })
    });
}

/// Computes line ranges covered by `#[cfg(test)]`-gated items, so the
/// deterministic-core rules skip unit-test modules embedded in library
/// files (mirrors clippy.toml's `allow-unwrap-in-tests`).
fn cfg_test_lines(tokens: &[Token]) -> Vec<Range<u32>> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Find the start of the gated item's body: the first `{`
            // after the attribute, then skip to its matching `}`.
            let mut j = i + 6; // past `# [ cfg ( test ) ]`
            let start_line = tokens.get(i).map_or(0, |t| t.line);
            let mut bodyless = false;
            while j < tokens.len() && tokens[j].kind != TokKind::Punct('{') {
                // `#[cfg(test)] use foo;` — item ends without a body;
                // mask only the attribute's own lines.
                if tokens[j].kind == TokKind::Punct(';') {
                    bodyless = true;
                    break;
                }
                j += 1;
            }
            if bodyless {
                let end = tokens.get(j).map_or(start_line, |t| t.line);
                ranges.push(start_line..end.saturating_add(1));
                i = j + 1;
                continue;
            }
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line);
            ranges.push(start_line..end_line.saturating_add(1));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Matches `# [ cfg ( test ) ]` starting at token `i`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let pat: &[TokKind] = &[
        TokKind::Punct('#'),
        TokKind::Punct('['),
        TokKind::Ident("cfg".into()),
        TokKind::Punct('('),
        TokKind::Ident("test".into()),
        TokKind::Punct(')'),
        TokKind::Punct(']'),
    ];
    tokens.len() >= i + pat.len() && tokens[i..i + pat.len()].iter().map(|t| &t.kind).eq(pat)
}

// ---------------------------------------------------------------- R1 --

/// R1 `nondet-collection-iter`: iteration over `HashMap`/`HashSet` in
/// deterministic-core code.
///
/// Two passes: first collect every identifier bound to a hash
/// collection in this file (let-bindings, typed params/fields), then
/// flag `name.iter()`-style calls and `for .. in` loops whose iterated
/// expression mentions such a name — unless the same statement sorts
/// the result or feeds an order-insensitive sink.
fn r1_nondet_collection_iter(
    ctx: &FileCtx<'_>,
    tokens: &[Token],
    lines: &[&str],
    in_scope: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let names = hash_collection_names(tokens);

    let mut i = 0;
    while i < tokens.len() {
        let line = tokens[i].line;
        match tokens[i].kind.ident() {
            // `name . iter_method (` where `name` is hash-typed.
            Some(name) if names.contains(name) => {
                if let (Some(TokKind::Punct('.')), Some(TokKind::Ident(m))) = (
                    tokens.get(i + 1).map(|t| &t.kind),
                    tokens.get(i + 2).map(|t| &t.kind),
                ) {
                    if ITER_METHODS.contains(&m.as_str())
                        && tokens.get(i + 3).map(|t| &t.kind) == Some(&TokKind::Punct('('))
                        && in_scope(line)
                        && !statement_is_order_safe(tokens, i + 3)
                    {
                        findings.push(finding(
                            ctx,
                            RuleId::NondetCollectionIter,
                            line,
                            lines,
                            &format!(
                                "iteration over hash collection `{name}` is \
                                 arbitrary-order; use BTreeMap/BTreeSet or \
                                 collect-and-sort"
                            ),
                        ));
                        i += 3;
                        continue;
                    }
                }
            }
            // `for pat in expr {` — flag if expr mentions a hash name.
            Some("for") => {
                if let Some((expr_start, body_start)) = for_loop_expr(tokens, i) {
                    let expr = &tokens[expr_start..body_start];
                    let hash_name = expr
                        .iter()
                        .filter_map(|t| t.kind.ident())
                        .find(|id| names.contains(*id));
                    let laundered = expr
                        .iter()
                        .filter_map(|t| t.kind.ident())
                        .any(|id| SORT_METHODS.contains(&id) || ITER_METHODS.contains(&id));
                    // Direct `for x in &map {}` has no method call in the
                    // expression; chained forms (`for x in map.iter()`) are
                    // caught by the method-call pattern above, so skip them
                    // here to avoid double-reporting.
                    if let (Some(name), false) = (hash_name, laundered) {
                        if in_scope(line) {
                            findings.push(finding(
                                ctx,
                                RuleId::NondetCollectionIter,
                                line,
                                lines,
                                &format!(
                                    "for-loop over hash collection `{name}` is \
                                     arbitrary-order; use BTreeMap/BTreeSet or \
                                     collect-and-sort"
                                ),
                            ));
                        }
                    }
                    // Resume scanning *inside* the header expression so
                    // chained forms (`for x in map.iter()`) still hit
                    // the method-call pattern above.
                    i = expr_start;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file:
/// `name: HashMap<..>` (fields, params, typed lets) and
/// `name = HashMap::new()/with_capacity/from/default()`.
fn hash_collection_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // Walk backwards over path/type noise to the binding position.
        let mut j = i;
        while j > 0 {
            j -= 1;
            match &tokens[j].kind {
                // Path segments and references: `std :: collections ::`,
                // `& mut`, `< lifetimes`, etc.
                TokKind::Punct(':') | TokKind::Punct('&') | TokKind::Punct('<') => continue,
                TokKind::Ident(seg)
                    if seg == "std" || seg == "collections" || seg == "mut" || seg == "dyn" =>
                {
                    continue
                }
                TokKind::Lifetime => continue,
                _ => break,
            }
        }
        match &tokens[j].kind {
            // `name : HashMap` — but `j` now sits *before* the `:` run;
            // the loop above consumed the colon(s), so tokens[j] is the
            // binding identifier itself (or `=` for initializer form).
            // Keywords are excluded so `use std::collections::HashMap`
            // registers nothing.
            TokKind::Ident(name)
                if !matches!(
                    name.as_str(),
                    "use" | "let" | "pub" | "in" | "crate" | "self"
                ) =>
            {
                names.insert(name.clone());
            }
            TokKind::Punct('=') => {
                // `name = HashMap::...` or `let name = HashMap::...`;
                // also `name: Ty = HashMap::new()` — walk back over an
                // optional type annotation to the identifier.
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    if let TokKind::Ident(name) = &tokens[k].kind {
                        if name != "mut" && name != "let" {
                            names.insert(name.clone());
                        }
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    names
}

/// Given `tokens[i] == for`, returns `(expr_start, body_start)` where
/// `expr_start` indexes just past `in` and `body_start` indexes the
/// `{` opening the loop body. Returns `None` for `impl Trait for Type`
/// (no `in` before the `{`).
fn for_loop_expr(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    let mut expr_start = None;
    let mut depth = 0i32;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Ident(id) if id == "in" && depth == 0 && expr_start.is_none() => {
                expr_start = Some(j + 1);
            }
            TokKind::Punct('{') if depth == 0 => {
                return expr_start.map(|s| (s, j));
            }
            // A `;` before `{` means this was not a for-loop header.
            TokKind::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// True if the statement containing the iter-call at `open_paren`
/// (index of `(`) either sorts the result or ends in an
/// order-insensitive sink before the next `;`.
fn statement_is_order_safe(tokens: &[Token], open_paren: usize) -> bool {
    let mut j = open_paren;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct(';') => return false,
            TokKind::Ident(id)
                if SORT_METHODS.contains(&id.as_str())
                    || ORDER_INSENSITIVE_SINKS.contains(&id.as_str()) =>
            {
                return true;
            }
            _ => {}
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------- R2 --

/// R2 `wall-clock-in-sim`: use of `std::time::Instant`/`SystemTime` in
/// deterministic-core code. Anchored on the import path (`time::Instant`,
/// which also catches `use std::time::Instant`) and on clock calls
/// (`Instant::now`, `SystemTime::now`, ...) rather than the bare
/// identifier, so a user enum variant named `Instant` (e.g. the Chrome
/// trace-event kind in fcc-telemetry) does not false-positive.
fn r2_wall_clock(
    ctx: &FileCtx<'_>,
    tokens: &[Token],
    lines: &[&str],
    in_scope: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    const CLOCK_CALLS: &[&str] = &["now", "elapsed", "duration_since", "UNIX_EPOCH"];
    let mut last_line = 0;
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        if id != "Instant" && id != "SystemTime" {
            continue;
        }
        // `time :: Instant` — import or fully-qualified path.
        let from_time_path = i >= 3
            && tokens[i - 1].kind == TokKind::Punct(':')
            && tokens[i - 2].kind == TokKind::Punct(':')
            && tokens[i - 3].kind.ident() == Some("time");
        // `Instant :: now` — a clock call on an in-scope import.
        let clock_call = matches!(
            (
                tokens.get(i + 1).map(|t| &t.kind),
                tokens.get(i + 2).map(|t| &t.kind)
            ),
            (Some(TokKind::Punct(':')), Some(TokKind::Punct(':')))
        ) && tokens
            .get(i + 3)
            .and_then(|t| t.kind.ident())
            .is_some_and(|m| CLOCK_CALLS.contains(&m));
        if (from_time_path || clock_call) && in_scope(t.line) && t.line != last_line {
            last_line = t.line;
            findings.push(finding(
                ctx,
                RuleId::WallClockInSim,
                t.line,
                lines,
                &format!(
                    "`{id}` reads the host clock; simulation code must use \
                     `SimTime` (wall-clock belongs in fcc-bench/fcc-verify)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- R3 --

/// R3 `entropy-rng`: `thread_rng` / `from_entropy` / `OsRng` anywhere
/// in the workspace. Every RNG must derive from the `--seed` flag.
fn r3_entropy_rng(
    ctx: &FileCtx<'_>,
    tokens: &[Token],
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    for t in tokens {
        let Some(id) = t.kind.ident() else { continue };
        if id == "thread_rng" || id == "from_entropy" || id == "OsRng" {
            findings.push(finding(
                ctx,
                RuleId::EntropyRng,
                t.line,
                lines,
                &format!(
                    "`{id}` draws OS entropy; all randomness must derive \
                     from the threaded `--seed` (SmallRng::seed_from_u64)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- R4 --

/// R4 `lossy-time-cast`: `as u32`/`as i32`/`as usize`/... applied to a
/// picosecond-valued expression. Tracks identifiers typed or assigned
/// as `SimTime` plus anything named `*_ps`, and flags
/// `x as u32`, `x.as_ps() as usize`, etc.
fn r4_lossy_time_cast(
    ctx: &FileCtx<'_>,
    tokens: &[Token],
    lines: &[&str],
    in_scope: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let time_names = simtime_names(tokens);
    for i in 0..tokens.len() {
        if tokens[i].kind.ident() != Some("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if !LOSSY_TARGETS.contains(&target) {
            continue;
        }
        let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
            continue;
        };
        let line = tokens[i].line;
        let is_time_valued = match &prev.kind {
            TokKind::Ident(name) => time_names.contains(name.as_str()) || name.ends_with("_ps"),
            // `expr.as_ps() as u32`: previous token is `)`; check the
            // method name just before the matching `(`.
            TokKind::Punct(')') => {
                call_before_close(tokens, i - 1).is_some_and(|m| PS_METHODS.contains(&m))
            }
            _ => false,
        };
        if is_time_valued && in_scope(line) {
            findings.push(finding(
                ctx,
                RuleId::LossyTimeCast,
                line,
                lines,
                &format!(
                    "`as {target}` truncates a 64-bit picosecond value; \
                     keep SimTime/u64 or use checked conversion"
                ),
            ));
        }
    }
}

/// Identifiers typed or initialized as `SimTime` in this file.
fn simtime_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind.ident() != Some("SimTime") {
            continue;
        }
        // `name : SimTime` (skip over `:`/`&`/`mut`).
        let mut j = i;
        while j > 0 {
            j -= 1;
            match &tokens[j].kind {
                TokKind::Punct(':') | TokKind::Punct('&') => continue,
                TokKind::Ident(seg) if seg == "mut" => continue,
                _ => break,
            }
        }
        match &tokens[j].kind {
            // Exclude keywords and common path segments so that
            // `use fcc_sim::time::SimTime` doesn't register `time` as
            // a time-valued binding.
            TokKind::Ident(name)
                if !matches!(
                    name.as_str(),
                    "use" | "let" | "pub" | "crate" | "self" | "super" | "time" | "sim" | "fcc_sim"
                ) =>
            {
                names.insert(name.clone());
            }
            TokKind::Punct('=') => {
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    if let TokKind::Ident(name) = &tokens[k].kind {
                        if name != "mut" && name != "let" {
                            names.insert(name.clone());
                        }
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    names
}

/// For a `)` at index `close`, walks back to its matching `(` and
/// returns the method/function identifier immediately before it.
fn call_before_close(tokens: &[Token], close: usize) -> Option<&str> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        match &tokens[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    return j
                        .checked_sub(1)
                        .and_then(|p| tokens.get(p))
                        .and_then(|t| t.kind.ident());
                }
            }
            _ => {}
        }
        j = j.checked_sub(1)?;
    }
}

// ---------------------------------------------------------------- R5 --

/// R5 `panic-in-lib`: `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` in deterministic-core *library* code (extends the
/// clippy unwrap/expect ban). Genuine invariant panics carry an inline
/// allow with the invariant as the reason.
fn r5_panic_in_lib(
    ctx: &FileCtx<'_>,
    tokens: &[Token],
    lines: &[&str],
    in_scope: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        let banned = matches!(id, "panic" | "unreachable" | "todo" | "unimplemented");
        if banned
            && tokens.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct('!'))
            && in_scope(t.line)
        {
            findings.push(finding(
                ctx,
                RuleId::PanicInLib,
                t.line,
                lines,
                &format!(
                    "`{id}!` in deterministic-core library code; return an \
                     error, or allow with the invariant as the reason"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- R6 --

/// R6 `layering`: checks a crate's `[dependencies]` against the
/// workspace DAG in [`crate::classify::allowed_deps`].
pub fn lint_manifest(
    package: &str,
    manifest_path: &str,
    m: &crate::manifest::Manifest,
) -> Vec<Finding> {
    let Some(allowed) = crate::classify::allowed_deps(package) else {
        return Vec::new();
    };
    m.fcc_deps
        .iter()
        .filter(|dep| !allowed.contains(&dep.as_str()))
        .map(|dep| Finding {
            rule: RuleId::Layering,
            file: manifest_path.to_string(),
            line: 0,
            excerpt: format!("{package} -> {dep}"),
            message: format!(
                "layering violation: `{package}` may not depend on `{dep}` \
                 (allowed fcc deps: {})",
                if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(", ")
                }
            ),
        })
        .collect()
}
