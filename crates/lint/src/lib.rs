//! `fcc-lint` — the workspace determinism & layering linter.
//!
//! The FCC reproduction's headline property is **byte-identical
//! replay**: the same scenario and seed produce the same exported
//! traces and results, serially or under `--jobs N`. That property is
//! easy to break and expensive to re-debug (the `UnifiedHeap::rebalance`
//! HashMap-order bug cost a full bisection). This crate turns the
//! contract into a static gate that runs in `scripts/check.sh` and CI.
//!
//! # Rules
//!
//! | code | name | scope |
//! |------|------|-------|
//! | R1 | `nondet-collection-iter` | deterministic-core, non-test |
//! | R2 | `wall-clock-in-sim` | deterministic-core, non-test |
//! | R3 | `entropy-rng` | every crate, every file |
//! | R4 | `lossy-time-cast` | deterministic-core, non-test |
//! | R5 | `panic-in-lib` | deterministic-core, library only |
//! | R6 | `layering` | every `Cargo.toml` |
//! | S0 | `malformed-suppression` | every scanned file |
//!
//! See `DESIGN.md` ("The determinism contract") for the rationale
//! behind each rule and the crate classification.
//!
//! # Suppression and baseline
//!
//! A finding is silenced inline with
//! `// fcc-lint: allow(rule) -- reason` (trailing on the line or on
//! the line above; the reason is mandatory), or grandfathered in
//! `lint_baseline.json` (regenerate with `fcc-lint --update-baseline`).
//! Unbaselined, unsuppressed findings exit non-zero.
//!
//! # Design constraints
//!
//! Everything is hand-rolled — lexer, TOML scanner, JSON reader/writer —
//! because the build environment is offline and the gate must not
//! depend on crates it is not allowed to fetch. The lexer is
//! comment/string/char-literal aware, so prose mentioning `HashMap`
//! never false-positives; see [`lexer`].

#![forbid(unsafe_code)]

pub mod baseline;
pub mod classify;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod workspace;

pub use baseline::Baseline;
pub use classify::{CrateClass, FileKind};
pub use report::{Finding, RuleId};
pub use rules::FileCtx;

/// Lints a single source string — the unit-test entry point.
///
/// `package` selects the crate classification, `kind` the file scope,
/// and `path` is only echoed into findings.
pub fn lint_source(package: &str, kind: FileKind, path: &str, src: &str) -> Vec<Finding> {
    rules::lint_file(
        FileCtx {
            package,
            class: classify::classify(package),
            kind,
            path,
        },
        src,
    )
}
