//! Finding model and the text / JSON reporters.

use std::fmt::Write as _;

/// The linter's rule set. Codes (`R1`..`R6`, `S0`) are stable and
/// accepted in suppressions interchangeably with the kebab-case names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// R1: iteration over `HashMap`/`HashSet` in deterministic-core code.
    NondetCollectionIter,
    /// R2: `Instant`/`SystemTime` outside the measurement crates.
    WallClockInSim,
    /// R3: `thread_rng`/`from_entropy`/`OsRng` anywhere.
    EntropyRng,
    /// R4: lossy `as` cast applied to a picosecond-valued expression.
    LossyTimeCast,
    /// R5: `panic!`-family macros in deterministic-core library code.
    PanicInLib,
    /// R6: `fcc-*` dependency edge outside the layering DAG.
    Layering,
    /// S0: `fcc-lint:` comment without rules or a reason.
    MalformedSuppression,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::NondetCollectionIter,
        RuleId::WallClockInSim,
        RuleId::EntropyRng,
        RuleId::LossyTimeCast,
        RuleId::PanicInLib,
        RuleId::Layering,
        RuleId::MalformedSuppression,
    ];

    /// Short stable code, e.g. `R1`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::NondetCollectionIter => "R1",
            RuleId::WallClockInSim => "R2",
            RuleId::EntropyRng => "R3",
            RuleId::LossyTimeCast => "R4",
            RuleId::PanicInLib => "R5",
            RuleId::Layering => "R6",
            RuleId::MalformedSuppression => "S0",
        }
    }

    /// Kebab-case rule name used in suppressions and reports.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NondetCollectionIter => "nondet-collection-iter",
            RuleId::WallClockInSim => "wall-clock-in-sim",
            RuleId::EntropyRng => "entropy-rng",
            RuleId::LossyTimeCast => "lossy-time-cast",
            RuleId::PanicInLib => "panic-in-lib",
            RuleId::Layering => "layering",
            RuleId::MalformedSuppression => "malformed-suppression",
        }
    }

    /// Parses a code (`R1`, case-insensitive) or name.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.name() == s || r.code().eq_ignore_ascii_case(s))
    }
}

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line; 0 for manifest-level findings (R6).
    pub line: u32,
    /// Trimmed source-line text; part of the baseline key so findings
    /// survive unrelated line drift.
    pub excerpt: String,
    pub message: String,
}

impl Finding {
    /// The baseline identity of this finding: rule + file + excerpt
    /// (not the line number, which churns with unrelated edits).
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule.code(), self.file, self.excerpt)
    }

    /// `file:line: rule[code]: message` — the text reporter line.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: {} [{}]: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.rule.code(),
            self.message
        )
    }
}

/// Escapes a string for JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report consumed by CI artifacts.
///
/// Shape: `{ "schema": 1, "new": [...], "baselined": [...],
/// "stale_baseline": [...] }` where each finding object carries
/// `rule`, `code`, `file`, `line`, `excerpt`, `message`.
pub fn render_json(new: &[Finding], baselined: &[Finding], stale: &[String]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    let render_list = |out: &mut String, name: &str, list: &[Finding]| {
        let _ = write!(out, "  \"{name}\": [");
        for (i, f) in list.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"rule\": \"{}\", \"code\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"excerpt\": \"{}\", \"message\": \"{}\"}}",
                f.rule.name(),
                f.rule.code(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.excerpt),
                json_escape(&f.message)
            );
        }
        out.push_str(if list.is_empty() { "],\n" } else { "\n  ],\n" });
    };
    render_list(&mut out, "new", new);
    render_list(&mut out, "baselined", baselined);
    let _ = write!(out, "  \"stale_baseline\": [");
    for (i, k) in stale.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\"", json_escape(k));
    }
    out.push_str(if stale.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parse_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
            assert_eq!(RuleId::parse(r.code()), Some(r));
            assert_eq!(RuleId::parse(&r.code().to_lowercase()), Some(r));
        }
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn text_rendering_has_file_line_rule() {
        let f = Finding {
            rule: RuleId::EntropyRng,
            file: "crates/sim/src/engine.rs".into(),
            line: 42,
            excerpt: "let mut rng = thread_rng();".into(),
            message: "entropy".into(),
        };
        let t = f.render_text();
        assert!(t.starts_with("crates/sim/src/engine.rs:42: entropy-rng [R3]:"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
