//! A small, self-contained Rust lexer.
//!
//! Produces a token stream of identifiers, punctuation, lifetimes, and
//! literals with 1-based line spans. String literals (including raw and
//! byte strings), character literals, and comments (line, block, doc —
//! block comments nest, as in real Rust) are consumed as single units,
//! so rule patterns never fire on text *inside* them: a doc comment
//! mentioning `HashMap` or a log string containing `panic!` is invisible
//! to the rule engine.
//!
//! Suppression comments (`// fcc-lint: allow(rule) -- reason`) are the
//! one place comment *content* matters; the lexer extracts them into a
//! side table during the same pass.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

/// Token classification. Rules pattern-match on `Ident` and `Punct`;
/// the literal kinds exist so that their *content* is skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `in`, `as`, `HashMap`, ...).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A lifetime such as `'a` (content discarded).
    Lifetime,
    /// Numeric literal (content discarded).
    Number,
    /// String literal of any flavor (content discarded).
    Str,
    /// Character or byte literal (content discarded).
    Char,
}

impl TokKind {
    /// Returns the identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// A `// fcc-lint: allow(rule, ...) -- reason` comment found during
/// lexing. `rules` holds the names/codes inside `allow(...)`;
/// `has_reason` records whether a non-empty reason followed `--`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub line: u32,
    pub rules: Vec<String>,
    pub has_reason: bool,
}

/// Lexer output: the token stream plus any suppression comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
}

/// Marker prefix for suppression comments.
const SUPPRESS_PREFIX: &str = "fcc-lint:";

/// Lexes `src`, returning tokens and suppression comments.
///
/// The lexer is intentionally forgiving: unterminated literals consume
/// to end of input rather than erroring, since the gate must never
/// crash on code that `rustc` itself would reject with a better
/// message.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr) => {
            out.tokens.push(Token { kind: $kind, line })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            // Line comment (// or ///) — scan for suppression directives.
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if let Ok(text) = core::str::from_utf8(&b[start..i]) {
                    parse_suppression(text, line, &mut out.suppressions);
                }
            }
            // Block comment — nests.
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            // Raw string r"..." / r#"..."# and raw identifier r#ident.
            b'r' if starts_raw_string(b, i) => {
                i += 1; // past 'r'
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                // r#ident (raw identifier): one '#' then ident start, no quote.
                if i < b.len() && b[i] != b'"' {
                    let start = i;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    push!(TokKind::Ident(ident_text(b, start, i)));
                    continue;
                }
                let tok_line = line;
                i += 1; // past opening quote
                consume_raw_string(b, &mut i, &mut line, hashes);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    line: tok_line,
                });
            }
            // Byte string b"..." / raw byte string br"..."
            b'b' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'\'')
                || starts_byte_raw(b, i) =>
            {
                if b[i + 1] == b'\'' {
                    i += 2;
                    consume_char_literal(b, &mut i, &mut line);
                    push!(TokKind::Char);
                } else if b[i + 1] == b'"' {
                    i += 2;
                    consume_string(b, &mut i, &mut line);
                    push!(TokKind::Str);
                } else {
                    // br"..." or br#"..."#
                    i += 2;
                    let mut hashes = 0usize;
                    while i < b.len() && b[i] == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < b.len() && b[i] == b'"' {
                        i += 1;
                        consume_raw_string(b, &mut i, &mut line, hashes);
                    }
                    push!(TokKind::Str);
                }
            }
            b'"' => {
                let tok_line = line;
                i += 1;
                consume_string(b, &mut i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    line: tok_line,
                });
            }
            // `'` begins either a char literal or a lifetime.
            b'\'' => {
                i += 1;
                if is_lifetime(b, i) {
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    push!(TokKind::Lifetime);
                } else {
                    consume_char_literal(b, &mut i, &mut line);
                    push!(TokKind::Char);
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                push!(TokKind::Ident(ident_text(b, start, i)));
            }
            _ if c.is_ascii_digit() => {
                consume_number(b, &mut i);
                push!(TokKind::Number);
            }
            _ => {
                // Non-ASCII bytes only occur inside literals/comments in
                // valid Rust; treat a stray one as opaque punctuation.
                push!(TokKind::Punct(c as char));
                i += 1;
            }
        }
    }
    out
}

fn ident_text(b: &[u8], start: usize, end: usize) -> String {
    String::from_utf8_lossy(&b[start..end]).into_owned()
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// `r` followed by `"` or `#...#"` or `#ident` starts a raw token.
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    b[i + 1] == b'"' || b[i + 1] == b'#'
}

fn starts_byte_raw(b: &[u8], i: usize) -> bool {
    b[i] == b'b' && i + 2 < b.len() && b[i + 1] == b'r' && (b[i + 2] == b'"' || b[i + 2] == b'#')
}

/// After a `'`, decide lifetime vs char literal. A lifetime is an ident
/// sequence NOT closed by another `'` (e.g. `'a` in `&'a str` vs the
/// char `'a'`).
fn is_lifetime(b: &[u8], i: usize) -> bool {
    if i >= b.len() || !is_ident_start(b[i]) {
        return false;
    }
    let mut j = i;
    while j < b.len() && is_ident_continue(b[j]) {
        j += 1;
    }
    !(j < b.len() && b[j] == b'\'')
}

fn consume_string(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

fn consume_raw_string(b: &[u8], i: &mut usize, line: &mut u32, hashes: usize) {
    while *i < b.len() {
        if b[*i] == b'\n' {
            *line += 1;
            *i += 1;
        } else if b[*i] == b'"' {
            let mut j = *i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                *i = j;
                return;
            }
            *i += 1;
        } else {
            *i += 1;
        }
    }
}

fn consume_char_literal(b: &[u8], i: &mut usize, line: &mut u32) {
    // Called just past the opening quote; consume until closing quote.
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'\'' => {
                *i += 1;
                return;
            }
            b'\n' => {
                // Unterminated; bail at end of line.
                *line += 1;
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

fn consume_number(b: &[u8], i: &mut usize) {
    // Digits plus ident-chars covers hex/oct/bin and type suffixes
    // (0xFFu64). A `.` is part of the number only when followed by a
    // digit, so ranges like `0..10` and calls like `1.max(x)` survive.
    while *i < b.len() {
        let c = b[*i];
        // Exponent signs (1e-5) count only when the previous char was
        // e/E and a digit follows.
        let dot_in_float = c == b'.' && *i + 1 < b.len() && b[*i + 1].is_ascii_digit();
        let exp_sign = (c == b'+' || c == b'-')
            && *i > 0
            && (b[*i - 1] == b'e' || b[*i - 1] == b'E')
            && *i + 1 < b.len()
            && b[*i + 1].is_ascii_digit();
        if is_ident_continue(c) || dot_in_float || exp_sign {
            *i += 1;
        } else {
            return;
        }
    }
}

/// Parses a suppression directive out of a line comment's text.
///
/// Grammar: `// fcc-lint: allow(rule[, rule...]) -- reason`. A missing
/// or empty reason still records the suppression (so the rule engine
/// can reject it loudly via the `malformed-suppression` diagnostic)
/// with `has_reason = false`.
fn parse_suppression(comment: &str, line: u32, out: &mut Vec<Suppression>) {
    let text = comment.trim_start_matches('/').trim();
    let Some(rest) = text.strip_prefix(SUPPRESS_PREFIX) else {
        return;
    };
    let rest = rest.trim();
    let Some(rest) = rest.strip_prefix("allow") else {
        // `fcc-lint:` without `allow(...)` — record as malformed.
        out.push(Suppression {
            line,
            rules: Vec::new(),
            has_reason: false,
        });
        return;
    };
    let rest = rest.trim_start();
    let (rules, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
        Some((inside, tail)) => (
            inside
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect(),
            tail,
        ),
        None => (Vec::new(), rest),
    };
    let has_reason = tail
        .trim()
        .strip_prefix("--")
        .is_some_and(|r| !r.trim().is_empty());
    out.push(Suppression {
        line,
        rules,
        has_reason,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        // `HashMap` and `panic!` appear only inside literals/comments:
        // none of them may surface as identifier tokens.
        let src = r##"
            // a HashMap lives here, and panic! too
            /* block with HashMap::new() and thread_rng() */
            /// doc: iterate the HashMap
            let s = "HashMap panic! Instant::now()";
            let r = r#"HashSet thread_rng"#;
            let c = 'H';
            let b = b"panic!";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "HashSet"));
        assert!(!ids.iter().any(|i| i == "panic"));
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c", "let", "b"]);
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* outer /* inner HashMap */ still comment */ keep");
        assert_eq!(ids, vec!["keep"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn line_numbers_across_multiline_string() {
        let lexed = lex("let s = \"one\ntwo\nthree\";\nafter");
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.kind.ident() == Some("after"))
            .map(|t| t.line);
        assert_eq!(after, Some(4));
    }

    #[test]
    fn suppression_with_reason() {
        let lexed =
            lex("x(); // fcc-lint: allow(nondet-collection-iter) -- snapshot is sorted below\n");
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert_eq!(s.line, 1);
        assert_eq!(s.rules, vec!["nondet-collection-iter"]);
        assert!(s.has_reason);
    }

    #[test]
    fn suppression_without_reason_flagged() {
        let lexed = lex("// fcc-lint: allow(entropy-rng)\n");
        assert_eq!(lexed.suppressions.len(), 1);
        assert!(!lexed.suppressions[0].has_reason);
    }

    #[test]
    fn suppression_multiple_rules() {
        let lexed = lex("// fcc-lint: allow(R1, wall-clock-in-sim) -- fixture\n");
        assert_eq!(lexed.suppressions[0].rules, vec!["R1", "wall-clock-in-sim"]);
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#type = 1;");
        assert_eq!(ids, vec!["let", "type"]);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let lexed = lex("for i in 0..10 { let x = 0xFFu64 + 1.5e-3; }");
        // The range `..` must survive as two '.' puncts, not be eaten
        // by the number.
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }
}
