//! The grandfathered-findings baseline (`lint_baseline.json`).
//!
//! The baseline is a counted multiset of finding keys
//! (`rule|file|excerpt` — deliberately line-number-free so unrelated
//! edits don't invalidate it). A current finding whose key has
//! remaining baseline budget is *baselined* (reported, not fatal);
//! anything else is *new* and fails the gate. Baseline entries with no
//! matching current finding are *stale* and reported so the file keeps
//! shrinking toward empty.
//!
//! The file format is ordinary JSON written by `--update-baseline`;
//! a minimal recursive-descent JSON reader lives here so the linter
//! stays dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::{json_escape, Finding, RuleId};

/// Parsed baseline: finding key -> allowed count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

/// Result of matching current findings against the baseline.
#[derive(Debug, Default)]
pub struct MatchResult {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// Findings covered by the baseline — reported as informational.
    pub baselined: Vec<Finding>,
    /// Baseline keys (with leftover counts) that matched nothing.
    pub stale: Vec<String>,
}

impl Baseline {
    /// Parses baseline JSON. Returns `Err` with a human-readable
    /// message on malformed input (a broken baseline must fail the
    /// gate loudly, not silently allow everything).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let mut counts = BTreeMap::new();
        let entries = value
            .get("findings")
            .and_then(Json::as_array)
            .ok_or_else(|| "baseline: missing \"findings\" array".to_string())?;
        for e in entries {
            let rule = e
                .get("rule")
                .and_then(Json::as_str)
                .ok_or_else(|| "baseline entry: missing \"rule\"".to_string())?;
            let rule = RuleId::parse(rule)
                .ok_or_else(|| format!("baseline entry: unknown rule {rule:?}"))?;
            let file = e
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| "baseline entry: missing \"file\"".to_string())?;
            let excerpt = e.get("excerpt").and_then(Json::as_str).unwrap_or("");
            let count = e.get("count").and_then(Json::as_u64).unwrap_or(1).max(1) as usize;
            let key = format!("{}|{}|{}", rule.code(), file, excerpt);
            *counts.entry(key).or_insert(0) += count;
        }
        Ok(Baseline { counts })
    }

    /// Number of distinct baselined keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the baseline grandfathers nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Partitions `findings` into new / baselined, and reports stale
    /// baseline entries.
    pub fn match_findings(&self, findings: Vec<Finding>) -> MatchResult {
        let mut budget = self.counts.clone();
        let mut out = MatchResult::default();
        for f in findings {
            match budget.get_mut(&f.key()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    out.baselined.push(f);
                }
                _ => out.new.push(f),
            }
        }
        out.stale = budget
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, _)| k)
            .collect();
        out
    }

    /// Total grandfathered budget for `rule` across all of its keys.
    pub fn rule_total(&self, rule: RuleId) -> usize {
        let prefix = format!("{}|", rule.code());
        self.counts
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, n)| *n)
            .sum()
    }

    /// Serializes `findings` as fresh baseline JSON (sorted, counted).
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.name().to_string(), f.file.clone(), f.excerpt.clone()))
                .or_insert(0) += 1;
        }
        let mut out = String::from("{\n  \"findings\": [");
        for (i, ((rule, file, excerpt), count)) in counts.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"rule\": \"{}\", \"file\": \"{}\", \"excerpt\": \"{}\", \
                 \"count\": {}}}",
                json_escape(rule),
                json_escape(file),
                json_escape(excerpt),
                count
            );
        }
        out.push_str(if counts.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Rules whose grandfathered budget is a one-way ratchet: the baseline
/// may shrink toward zero but a `--update-baseline` run must never grow
/// it. New findings under these rules have to be fixed (or suppressed
/// inline with a reason), not silently laundered into the baseline.
pub const RATCHET_RULES: [RuleId; 1] = [RuleId::PanicInLib];

/// Enforces the ratchet between the committed baseline and a candidate
/// replacement. Returns `Err` naming the first rule whose total grew.
pub fn check_ratchet(old: &Baseline, new: &Baseline) -> Result<(), String> {
    for rule in RATCHET_RULES {
        let (was, now) = (old.rule_total(rule), new.rule_total(rule));
        if now > was {
            return Err(format!(
                "{} ({}) budget would grow {was} -> {now}; the baseline is \
                 regression-only for this rule — fix the new finding(s) or \
                 suppress inline with `// fcc-lint: allow({}) -- reason`",
                rule.code(),
                rule.name(),
                rule.name(),
            ));
        }
    }
    Ok(())
}

// ------------------------------------------------------------- JSON --

/// Minimal JSON value for reading the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("json: trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("json: unexpected byte at {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("json: bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        core::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("json: bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("json: bad \\u escape at byte {}", self.i)
                                })?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("json: bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                _ => {
                    // Copy the raw UTF-8 byte run.
                    let start = self.i;
                    while self.b.get(self.i).is_some_and(|&c| c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.b[start..self.i]));
                }
            }
        }
        Err("json: unterminated string".to_string())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.i += 1; // [
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(Json::Array(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {}
                _ => return Err(format!("json: expected , or ] at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1; // {
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(Json::Object(fields));
            }
            if self.b.get(self.i) != Some(&b'"') {
                return Err(format!("json: expected key at byte {}", self.i));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("json: expected : at byte {}", self.i));
            }
            self.i += 1;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {}
                _ => return Err(format!("json: expected , or }} at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: RuleId, file: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 7,
            excerpt: excerpt.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip_and_matching() {
        let findings = vec![
            f(
                RuleId::PanicInLib,
                "crates/sim/src/engine.rs",
                "panic!(\"x\")",
            ),
            f(
                RuleId::PanicInLib,
                "crates/sim/src/engine.rs",
                "panic!(\"x\")",
            ),
            f(
                RuleId::EntropyRng,
                "crates/bench/src/lib.rs",
                "thread_rng()",
            ),
        ];
        let text = Baseline::render(&findings);
        let base = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(base.len(), 2); // two distinct keys, one with count 2

        // All three findings are covered; a fourth identical panic is new.
        let mut four = findings.clone();
        four.push(f(
            RuleId::PanicInLib,
            "crates/sim/src/engine.rs",
            "panic!(\"x\")",
        ));
        let res = base.match_findings(four);
        assert_eq!(res.baselined.len(), 3);
        assert_eq!(res.new.len(), 1);
        assert!(res.stale.is_empty());

        // Dropping the entropy finding leaves its entry stale.
        let res = base.match_findings(findings[..2].to_vec());
        assert_eq!(res.new.len(), 0);
        assert_eq!(res.stale.len(), 1);
        assert!(res.stale[0].contains("thread_rng"));
    }

    #[test]
    fn ratchet_blocks_growth_and_allows_shrink() {
        let two = vec![
            f(RuleId::PanicInLib, "a.rs", "panic!(\"a\")"),
            f(RuleId::PanicInLib, "b.rs", "panic!(\"b\")"),
        ];
        let three = {
            let mut v = two.clone();
            v.push(f(RuleId::PanicInLib, "c.rs", "panic!(\"c\")"));
            v
        };
        let parse = |fs: &[Finding]| match Baseline::parse(&Baseline::render(fs)) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        };
        let (old, grown, shrunk) = (parse(&two), parse(&three), parse(&two[..1]));
        assert_eq!(old.rule_total(RuleId::PanicInLib), 2);
        assert!(check_ratchet(&old, &grown).is_err(), "2 -> 3 must refuse");
        assert!(check_ratchet(&old, &shrunk).is_ok(), "2 -> 1 may proceed");
        assert!(check_ratchet(&old, &old).is_ok(), "2 -> 2 may proceed");
        // Non-ratchet rules are free to grow.
        let mut with_entropy = two.clone();
        with_entropy.push(f(RuleId::EntropyRng, "d.rs", "thread_rng()"));
        assert!(check_ratchet(&old, &parse(&with_entropy)).is_ok());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{}").is_err()); // missing findings
        assert!(
            Baseline::parse("{\"findings\": [{\"rule\": \"bogus\", \"file\": \"f\"}]}").is_err()
        );
    }

    #[test]
    fn line_drift_does_not_invalidate() {
        let base = match Baseline::parse(
            "{\"findings\": [{\"rule\": \"R5\", \"file\": \"a.rs\", \"excerpt\": \"panic!()\"}]}",
        ) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        };
        let mut moved = f(RuleId::PanicInLib, "a.rs", "panic!()");
        moved.line = 999;
        let res = base.match_findings(vec![moved]);
        assert!(res.new.is_empty());
        assert_eq!(res.baselined.len(), 1);
    }
}
