//! `fcc-lint` CLI: the determinism & layering gate.
//!
//! ```text
//! fcc-lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (or baseline updated), 1 unbaselined findings or
//! a refused `--update-baseline` (a regression-only rule's grandfathered
//! budget would grow — see [`fcc_lint::baseline::RATCHET_RULES`]),
//! 2 usage/environment error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fcc_lint::{baseline::Baseline, report, workspace, RuleId};

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        baseline: None,
        json: None,
        update_baseline: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => opts.root = Some(PathBuf::from(next(&mut args, "--root")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(next(&mut args, "--baseline")?)),
            "--json" => opts.json = Some(PathBuf::from(next(&mut args, "--json")?)),
            "--update-baseline" => opts.update_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "fcc-lint: workspace determinism & layering linter\n\n\
                     USAGE: fcc-lint [--root DIR] [--baseline FILE] [--json FILE] \
                     [--update-baseline] [--list-rules]\n\n\
                     Findings not covered by an inline \
                     `// fcc-lint: allow(rule) -- reason` or by the committed\n\
                     baseline (default: <root>/lint_baseline.json) fail the run."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

fn next(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fcc-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;

    if opts.list_rules {
        for r in RuleId::ALL {
            println!("{:<4} {}", r.code(), r.name());
        }
        return Ok(true);
    }

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            workspace::find_root(&cwd).ok_or_else(|| {
                "no workspace root found (run inside the repo or pass --root)".to_string()
            })?
        }
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint_baseline.json"));

    let (findings, errors) = workspace::run(&root)?;
    for e in &errors {
        eprintln!("fcc-lint: warning: {e}");
    }

    if opts.update_baseline {
        // Ratchet: regression-only rules may never grow their budget.
        let old = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => return Err(format!("read {}: {e}", baseline_path.display())),
        };
        let rendered = Baseline::render(&findings);
        let new = Baseline::parse(&rendered)?;
        if let Err(why) = fcc_lint::baseline::check_ratchet(&old, &new) {
            println!("fcc-lint: REFUSED baseline update: {why}");
            return Ok(false);
        }
        std::fs::write(&baseline_path, rendered)
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        println!(
            "fcc-lint: baseline updated: {} finding(s) -> {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("read {}: {e}", baseline_path.display())),
    };
    let res = baseline.match_findings(findings);

    if let Some(json_path) = &opts.json {
        let body = report::render_json(&res.new, &res.baselined, &res.stale);
        if json_path.as_os_str() == "-" {
            print!("{body}");
        } else {
            if let Some(parent) = json_path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                }
            }
            std::fs::write(json_path, body)
                .map_err(|e| format!("write {}: {e}", json_path.display()))?;
        }
    }

    for f in &res.new {
        println!("{}", f.render_text());
    }
    for k in &res.stale {
        println!("stale baseline entry (fix shipped? run --update-baseline): {k}");
    }
    println!(
        "fcc-lint: {} new, {} baselined, {} stale baseline entr{}",
        res.new.len(),
        res.baselined.len(),
        res.stale.len(),
        if res.stale.len() == 1 { "y" } else { "ies" }
    );
    if !res.new.is_empty() {
        println!("fcc-lint: FAIL — fix, suppress with a reason, or --update-baseline");
    }
    Ok(res.new.is_empty())
}
