//! Workspace discovery and the full lint run.
//!
//! Scans every workspace member under `crates/*` plus the root `fcc`
//! facade (`src/`, `tests/`, `examples/`). `vendor/` (offline stub
//! crates) and `target/` are never scanned. Directory walks and member
//! ordering are sorted so the report itself is deterministic — the
//! linter must hold itself to the contract it enforces.

use std::fs;
use std::path::{Path, PathBuf};

use crate::classify::{classify, file_kind};
use crate::manifest;
use crate::report::Finding;
use crate::rules::{self, FileCtx};

/// One crate to lint: manifest path + source roots.
#[derive(Debug)]
struct Member {
    /// Package name from the manifest.
    name: String,
    /// Directory containing the crate's `Cargo.toml`.
    dir: PathBuf,
    /// Workspace-relative prefix for report paths (e.g. `crates/sim`).
    rel: String,
}

/// Runs every rule over the workspace rooted at `root`.
///
/// Returns findings sorted by (file, line, rule). IO errors on
/// individual files are reported as messages in `errors`; the run
/// continues so one unreadable file cannot hide other findings.
pub fn run(root: &Path) -> Result<(Vec<Finding>, Vec<String>), String> {
    let mut findings = Vec::new();
    let mut errors = Vec::new();

    for member in members(root, &mut errors) {
        let manifest_path = member.dir.join("Cargo.toml");
        let manifest_rel = format!("{}/Cargo.toml", member.rel);
        match fs::read_to_string(&manifest_path) {
            Ok(text) => {
                let m = manifest::parse(&text);
                findings.extend(rules::lint_manifest(&member.name, &manifest_rel, &m));
            }
            Err(e) => errors.push(format!("{}: {e}", manifest_path.display())),
        }

        let class = classify(&member.name);
        for file in rust_files(&member.dir, &mut errors) {
            let rel_in_crate = match file.strip_prefix(&member.dir) {
                Ok(p) => p.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            let rel = if member.rel.is_empty() {
                rel_in_crate.clone()
            } else {
                format!("{}/{}", member.rel, rel_in_crate)
            };
            let ctx = FileCtx {
                package: &member.name,
                class,
                kind: file_kind(&rel_in_crate),
                path: &rel,
            };
            match fs::read_to_string(&file) {
                Ok(src) => findings.extend(rules::lint_file(ctx, &src)),
                Err(e) => errors.push(format!("{}: {e}", file.display())),
            }
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok((findings, errors))
}

/// Enumerates workspace members: `crates/*` with a `Cargo.toml`, plus
/// the root package.
fn members(root: &Path, errors: &mut Vec<String>) -> Vec<Member> {
    let mut out = Vec::new();
    // Root facade crate (the root Cargo.toml defines package `fcc`).
    match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(text) => {
            if let Some(name) = manifest::parse(&text).name {
                out.push(Member {
                    name,
                    dir: root.to_path_buf(),
                    rel: String::new(),
                });
            }
        }
        Err(e) => errors.push(format!("{}: {e}", root.join("Cargo.toml").display())),
    }
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect(),
        Err(e) => {
            errors.push(format!("{}: {e}", crates_dir.display()));
            Vec::new()
        }
    };
    dirs.sort();
    for dir in dirs {
        match fs::read_to_string(dir.join("Cargo.toml")) {
            Ok(text) => {
                let Some(name) = manifest::parse(&text).name else {
                    continue;
                };
                let rel = format!(
                    "crates/{}",
                    dir.file_name()
                        .map(|n| n.to_string_lossy())
                        .unwrap_or_default()
                );
                out.push(Member { name, dir, rel });
            }
            Err(e) => errors.push(format!("{}: {e}", dir.display())),
        }
    }
    out
}

/// All `.rs` files under a crate's source roots, sorted.
fn rust_files(dir: &Path, errors: &mut Vec<String>) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for sub in ["src", "tests", "benches", "examples"] {
        let root = dir.join(sub);
        if root.is_dir() {
            walk(&root, &mut out, errors);
        }
    }
    let build = dir.join("build.rs");
    if build.is_file() {
        out.push(build);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>, errors: &mut Vec<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) => {
            errors.push(format!("{}: {e}", dir.display()));
            return;
        }
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // The root member's `src` never nests other members here,
            // but skip obvious non-source dirs defensively.
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(name.as_deref(), Some("target") | Some(".git")) {
                continue;
            }
            walk(&p, out, errors);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Walks upward from `start` to the workspace root (the first
/// directory whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
