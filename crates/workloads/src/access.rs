//! Address-stream generators.

use rand::seq::SliceRandom;
use rand::Rng;

/// Uniform random object/address indices in `[0, n)`.
#[derive(Debug, Clone)]
pub struct UniformStream {
    n: u64,
}

impl UniformStream {
    /// Creates a stream over `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "empty universe");
        UniformStream { n }
    }

    /// Draws the next index.
    pub fn next(&mut self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(0..self.n)
    }
}

/// A wrapping sequential sweep.
#[derive(Debug, Clone)]
pub struct SequentialStream {
    n: u64,
    next: u64,
}

#[allow(clippy::should_implement_trait)] // a seeded generator, not an Iterator.
impl SequentialStream {
    /// Creates a sweep over `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "empty universe");
        SequentialStream { n, next: 0 }
    }

    /// Returns the next index.
    pub fn next(&mut self) -> u64 {
        let i = self.next;
        self.next = (self.next + 1) % self.n;
        i
    }
}

/// Zipf-distributed indices over `[0, n)`: rank `k` (0-based) is drawn
/// with probability proportional to `1 / (k+1)^theta`.
///
/// Implemented with a precomputed CDF and binary search — exact, O(log n)
/// per sample, fine for the object counts the experiments use (≤ 10^6).
///
/// # Examples
///
/// ```
/// use fcc_workloads::access::ZipfStream;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut zipf = ZipfStream::new(100, 1.1);
/// let hits = (0..1000).filter(|_| zipf.next(&mut rng) == 0).count();
/// assert!(hits > 100, "rank 0 dominates: {hits}");
/// ```
#[derive(Debug, Clone)]
pub struct ZipfStream {
    cdf: Vec<f64>,
}

impl ZipfStream {
    /// Creates a Zipf stream over `n` items with skew `theta`.
    ///
    /// `theta == 0` degenerates to uniform; common skew is 0.9–1.2.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative/not finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty universe");
        assert!(theta.is_finite() && theta >= 0.0, "bad skew {theta}");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfStream { cdf }
    }

    /// Draws the next rank (0 = most popular).
    pub fn next(&mut self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Probability mass of rank 0 (the hottest item).
    pub fn head_mass(&self) -> f64 {
        self.cdf[0]
    }
}

/// A random-cycle pointer chase: a permutation of `[0, n)` forming a
/// single cycle, so dependent traversal touches every slot with no
/// exploitable locality.
#[derive(Debug, Clone)]
pub struct PointerChase {
    next: Vec<u64>,
    cursor: u64,
}

impl PointerChase {
    /// Builds a single-cycle permutation of `n` slots (Sattolo's
    /// algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u64, rng: &mut impl Rng) -> Self {
        assert!(n >= 2, "chase needs at least two slots");
        let mut order: Vec<u64> = (0..n).collect();
        // Sattolo: single cycle guaranteed.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..i);
            order.swap(i, j);
        }
        let mut next = vec![0u64; n as usize];
        for w in 0..order.len() {
            let from = order[w];
            let to = order[(w + 1) % order.len()];
            next[from as usize] = to;
        }
        PointerChase { next, cursor: 0 }
    }

    /// Follows the chain one step and returns the new slot.
    pub fn step(&mut self) -> u64 {
        self.cursor = self.next[self.cursor as usize];
        self.cursor
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Whether the chase is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }
}

/// Shuffles a list of items into a random service order (utility used by
/// several experiment harnesses).
pub fn shuffled<T>(mut items: Vec<T>, rng: &mut impl Rng) -> Vec<T> {
    items.shuffle(rng);
    items
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn uniform_covers_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = UniformStream::new(10);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[s.next(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn sequential_wraps() {
        let mut s = SequentialStream::new(3);
        let xs: Vec<u64> = (0..7).map(|_| s.next()).collect();
        assert_eq!(xs, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut z = ZipfStream::new(1000, 1.1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // Rank 0 far outweighs rank 100.
        assert!(counts[0] > counts[100] * 20);
        // Top 10 ranks take a large share.
        let top10: u64 = counts[..10].iter().sum();
        assert!(top10 as f64 > 0.4 * 100_000.0, "top-10 share {top10}");
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut z = ZipfStream::new(100, 0.0);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().expect("nonempty");
        let min = *counts.iter().min().expect("nonempty");
        assert!(max < min * 2, "uniform-ish: {min}..{max}");
    }

    #[test]
    fn pointer_chase_is_a_single_full_cycle() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut chase = PointerChase::new(256, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            assert!(seen.insert(chase.step()), "revisit before full cycle");
        }
        assert_eq!(seen.len(), 256);
        // Next step closes the cycle.
        assert!(seen.contains(&chase.step()));
    }

    #[test]
    fn chase_is_seed_deterministic() {
        let build = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut c = PointerChase::new(64, &mut rng);
            (0..10).map(|_| c.step()).collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }
}
