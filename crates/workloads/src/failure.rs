//! Power-domain failure schedules.
//!
//! §3 D#5: "hosts and remote devices usually stay in different power
//! domains and can fail separately". A [`FailureSchedule`] draws crash
//! instants per domain from exponential inter-failure times, with a fixed
//! recovery delay — the input to the idempotent-task experiments (E6).

use rand::Rng;

use fcc_sim::SimTime;

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// Crash instant.
    pub at: SimTime,
    /// Failing power domain (index into the experiment's domain list).
    pub domain: usize,
    /// When the domain is back.
    pub recovered_at: SimTime,
}

/// A pre-drawn schedule of failures over a horizon.
#[derive(Debug, Clone)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// Draws a schedule: each of `domains` fails independently with mean
    /// time between failures `mtbf`, each outage lasting `downtime`,
    /// within `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf` is zero.
    pub fn draw(
        domains: usize,
        mtbf: SimTime,
        downtime: SimTime,
        horizon: SimTime,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(mtbf > SimTime::ZERO, "mtbf must be positive");
        let mut events = Vec::new();
        for d in 0..domains {
            let mut t = SimTime::ZERO;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let gap = -u.ln() * mtbf.as_ns();
                t += SimTime::from_ns(gap);
                if t > horizon {
                    break;
                }
                events.push(FailureEvent {
                    at: t,
                    domain: d,
                    recovered_at: t + downtime,
                });
                t += downtime;
            }
        }
        events.sort_by_key(|e| e.at);
        FailureSchedule { events }
    }

    /// An explicit schedule (deterministic tests).
    pub fn explicit(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FailureSchedule { events }
    }

    /// All events in time order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Whether `domain` is down at `t`.
    pub fn is_down(&self, domain: usize, t: SimTime) -> bool {
        self.events
            .iter()
            .any(|e| e.domain == domain && e.at <= t && t < e.recovered_at)
    }

    /// Number of failures injected for `domain`.
    pub fn count_for(&self, domain: usize) -> usize {
        self.events.iter().filter(|e| e.domain == domain).count()
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn draw_respects_horizon_and_orders_events() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = FailureSchedule::draw(
            4,
            SimTime::from_us(50.0),
            SimTime::from_us(10.0),
            SimTime::from_ms(1.0),
            &mut rng,
        );
        assert!(!s.events().is_empty());
        let mut last = SimTime::ZERO;
        for e in s.events() {
            assert!(e.at <= SimTime::from_ms(1.0));
            assert!(e.at >= last);
            assert_eq!(e.recovered_at, e.at + SimTime::from_us(10.0));
            last = e.at;
        }
    }

    #[test]
    fn is_down_tracks_outages() {
        let s = FailureSchedule::explicit(vec![FailureEvent {
            at: SimTime::from_us(10.0),
            domain: 1,
            recovered_at: SimTime::from_us(20.0),
        }]);
        assert!(!s.is_down(1, SimTime::from_us(5.0)));
        assert!(s.is_down(1, SimTime::from_us(15.0)));
        assert!(!s.is_down(1, SimTime::from_us(20.0)), "boundary is up");
        assert!(!s.is_down(0, SimTime::from_us(15.0)), "other domain up");
    }

    #[test]
    fn mtbf_scales_failure_count() {
        let mut rng = StdRng::seed_from_u64(10);
        let frequent = FailureSchedule::draw(
            1,
            SimTime::from_us(10.0),
            SimTime::from_us(1.0),
            SimTime::from_ms(1.0),
            &mut rng,
        );
        let rare = FailureSchedule::draw(
            1,
            SimTime::from_us(200.0),
            SimTime::from_us(1.0),
            SimTime::from_ms(1.0),
            &mut rng,
        );
        assert!(frequent.count_for(0) > rare.count_for(0) * 4);
    }
}
