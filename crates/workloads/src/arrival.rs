//! Open-loop arrival processes.

use rand::Rng;

use fcc_sim::SimTime;

/// Poisson arrivals: exponential inter-arrival times at a given rate.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean_gap_ns: f64,
    next_at: SimTime,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_us` average arrivals per
    /// microsecond, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn new(rate_per_us: f64, start: SimTime) -> Self {
        assert!(rate_per_us > 0.0, "rate must be positive");
        PoissonArrivals {
            mean_gap_ns: 1000.0 / rate_per_us,
            next_at: start,
        }
    }

    /// Returns the next arrival instant.
    pub fn next(&mut self, rng: &mut impl Rng) -> SimTime {
        let at = self.next_at;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = -u.ln() * self.mean_gap_ns;
        self.next_at = at + SimTime::from_ns(gap);
        at
    }

    /// The instant the next call to [`next`](Self::next) will return.
    pub fn next_at(&self) -> SimTime {
        self.next_at
    }

    /// Changes the arrival rate; takes effect from the next drawn gap.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn set_rate(&mut self, rate_per_us: f64) {
        assert!(rate_per_us > 0.0, "rate must be positive");
        self.mean_gap_ns = 1000.0 / rate_per_us;
    }
}

/// Poisson arrivals whose rate follows a piecewise-linear curve over
/// sim-time — a deterministic "diurnal" load shape for open-loop
/// serving clients (E13).
///
/// The curve is a sorted list of `(instant, rate_per_us)` control
/// points; between points the rate is linearly interpolated, and beyond
/// either end it is clamped to the nearest point's rate. Each drawn gap
/// uses the rate at the *current* arrival instant, so the process is a
/// standard non-homogeneous Poisson approximation that stays exactly
/// reproducible from the seed: the number of `next` calls alone decides
/// how much entropy is consumed.
#[derive(Debug, Clone)]
pub struct DiurnalModulator {
    poisson: PoissonArrivals,
    points: Vec<(SimTime, f64)>,
}

impl DiurnalModulator {
    /// Creates a modulated process from `points` on the rate curve,
    /// starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, not sorted by instant, or contains
    /// a non-positive rate.
    pub fn new(points: Vec<(SimTime, f64)>, start: SimTime) -> Self {
        assert!(!points.is_empty(), "need at least one control point");
        for pair in points.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "control points must be sorted");
        }
        for &(_, rate) in &points {
            assert!(rate > 0.0, "rates must be positive");
        }
        let initial = Self::interpolate(&points, start);
        DiurnalModulator {
            poisson: PoissonArrivals::new(initial, start),
            points,
        }
    }

    fn interpolate(points: &[(SimTime, f64)], at: SimTime) -> f64 {
        let first = points[0];
        if at <= first.0 {
            return first.1;
        }
        let last = points[points.len() - 1];
        if at >= last.0 {
            return last.1;
        }
        for pair in points.windows(2) {
            let (t0, r0) = pair[0];
            let (t1, r1) = pair[1];
            if at <= t1 {
                let span = (t1 - t0).as_ns();
                if span <= 0.0 {
                    return r1;
                }
                let frac = (at - t0).as_ns() / span;
                return r0 + (r1 - r0) * frac;
            }
        }
        last.1
    }

    /// The interpolated rate (arrivals per microsecond) at `at`.
    pub fn rate_at(&self, at: SimTime) -> f64 {
        Self::interpolate(&self.points, at)
    }

    /// Returns the next arrival instant, drawing the gap at the rate
    /// the curve prescribes for that instant.
    pub fn next(&mut self, rng: &mut impl Rng) -> SimTime {
        let rate = Self::interpolate(&self.points, self.poisson.next_at());
        self.poisson.set_rate(rate);
        self.poisson.next(rng)
    }
}

/// Fixed-period arrivals.
#[derive(Debug, Clone)]
pub struct PeriodicArrivals {
    period: SimTime,
    next_at: SimTime,
}

#[allow(clippy::should_implement_trait)] // a seeded generator, not an Iterator.
impl PeriodicArrivals {
    /// Creates a process firing every `period` from `start`.
    pub fn new(period: SimTime, start: SimTime) -> Self {
        PeriodicArrivals {
            period,
            next_at: start,
        }
    }

    /// Returns the next arrival instant.
    pub fn next(&mut self) -> SimTime {
        let at = self.next_at;
        self.next_at = at + self.period;
        at
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn poisson_mean_gap_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = PoissonArrivals::new(2.0, SimTime::ZERO); // 500ns mean gap.
        let mut last = p.next(&mut rng);
        let mut total = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let t = p.next(&mut rng);
            total += (t - last).as_ns();
            last = t;
        }
        let mean = total / n as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean gap {mean}");
    }

    #[test]
    fn poisson_is_monotone() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = PoissonArrivals::new(10.0, SimTime::from_us(1.0));
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let t = p.next(&mut rng);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn diurnal_interpolates_and_clamps() {
        let d = DiurnalModulator::new(
            vec![
                (SimTime::from_us(10.0), 2.0),
                (SimTime::from_us(20.0), 10.0),
                (SimTime::from_us(30.0), 4.0),
            ],
            SimTime::ZERO,
        );
        // Clamped before the first and after the last control point.
        assert!((d.rate_at(SimTime::ZERO) - 2.0).abs() < 1e-12);
        assert!((d.rate_at(SimTime::from_us(50.0)) - 4.0).abs() < 1e-12);
        // Exact at control points, linear in between.
        assert!((d.rate_at(SimTime::from_us(20.0)) - 10.0).abs() < 1e-12);
        assert!((d.rate_at(SimTime::from_us(15.0)) - 6.0).abs() < 1e-9);
        assert!((d.rate_at(SimTime::from_us(25.0)) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_peak_is_denser_than_trough() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = DiurnalModulator::new(
            vec![
                (SimTime::ZERO, 1.0),
                (SimTime::from_us(100.0), 1.0),
                (SimTime::from_us(120.0), 20.0),
                (SimTime::from_us(220.0), 20.0),
            ],
            SimTime::ZERO,
        );
        let mut trough = 0u32;
        let mut peak = 0u32;
        loop {
            let t = d.next(&mut rng);
            if t >= SimTime::from_us(220.0) {
                break;
            }
            if t < SimTime::from_us(100.0) {
                trough += 1;
            } else if t >= SimTime::from_us(120.0) {
                peak += 1;
            }
        }
        // Same window length, 20x rate: expect ~100 vs ~2000 arrivals.
        assert!(trough > 50 && trough < 200, "trough {trough}");
        assert!(
            peak > u32::max(1000, trough * 5),
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn diurnal_is_monotone_and_deterministic() {
        let points = vec![(SimTime::ZERO, 3.0), (SimTime::from_us(40.0), 9.0)];
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = DiurnalModulator::new(points.clone(), SimTime::from_ns(5.0));
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            for _ in 0..500 {
                let t = d.next(&mut rng);
                assert!(t >= last);
                last = t;
                out.push(t);
            }
            out
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn periodic_fires_exactly() {
        let mut p = PeriodicArrivals::new(SimTime::from_ns(100.0), SimTime::from_ns(50.0));
        assert_eq!(p.next(), SimTime::from_ns(50.0));
        assert_eq!(p.next(), SimTime::from_ns(150.0));
        assert_eq!(p.next(), SimTime::from_ns(250.0));
    }
}
