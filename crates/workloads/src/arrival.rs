//! Open-loop arrival processes.

use rand::Rng;

use fcc_sim::SimTime;

/// Poisson arrivals: exponential inter-arrival times at a given rate.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean_gap_ns: f64,
    next_at: SimTime,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_us` average arrivals per
    /// microsecond, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn new(rate_per_us: f64, start: SimTime) -> Self {
        assert!(rate_per_us > 0.0, "rate must be positive");
        PoissonArrivals {
            mean_gap_ns: 1000.0 / rate_per_us,
            next_at: start,
        }
    }

    /// Returns the next arrival instant.
    pub fn next(&mut self, rng: &mut impl Rng) -> SimTime {
        let at = self.next_at;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = -u.ln() * self.mean_gap_ns;
        self.next_at = at + SimTime::from_ns(gap);
        at
    }
}

/// Fixed-period arrivals.
#[derive(Debug, Clone)]
pub struct PeriodicArrivals {
    period: SimTime,
    next_at: SimTime,
}

#[allow(clippy::should_implement_trait)] // a seeded generator, not an Iterator.
impl PeriodicArrivals {
    /// Creates a process firing every `period` from `start`.
    pub fn new(period: SimTime, start: SimTime) -> Self {
        PeriodicArrivals {
            period,
            next_at: start,
        }
    }

    /// Returns the next arrival instant.
    pub fn next(&mut self) -> SimTime {
        let at = self.next_at;
        self.next_at = at + self.period;
        at
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn poisson_mean_gap_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = PoissonArrivals::new(2.0, SimTime::ZERO); // 500ns mean gap.
        let mut last = p.next(&mut rng);
        let mut total = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let t = p.next(&mut rng);
            total += (t - last).as_ns();
            last = t;
        }
        let mean = total / n as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean gap {mean}");
    }

    #[test]
    fn poisson_is_monotone() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = PoissonArrivals::new(10.0, SimTime::from_us(1.0));
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let t = p.next(&mut rng);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn periodic_fires_exactly() {
        let mut p = PeriodicArrivals::new(SimTime::from_ns(100.0), SimTime::from_ns(50.0));
        assert_eq!(p.next(), SimTime::from_ns(50.0));
        assert_eq!(p.next(), SimTime::from_ns(150.0));
        assert_eq!(p.next(), SimTime::from_ns(250.0));
    }
}
