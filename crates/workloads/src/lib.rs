#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Workload and fault-injection generators for the FCC experiments.
//!
//! * [`access`] — address-stream generators: uniform, sequential, Zipf
//!   (skewed object popularity), and random-cycle pointer chases.
//! * [`arrival`] — open-loop arrival processes (Poisson, periodic, and
//!   diurnally modulated Poisson for serving workloads).
//! * [`churn`] — fabric composition churn schedules (hot-add/remove) for
//!   the elasticity experiment (E11).
//! * [`failure`] — power-domain failure schedules for the passive failure
//!   domain experiments (§3 D#5, E6).

pub mod access;
pub mod arrival;
pub mod churn;
pub mod failure;

pub use access::{PointerChase, SequentialStream, UniformStream, ZipfStream};
pub use arrival::{DiurnalModulator, PeriodicArrivals, PoissonArrivals};
pub use churn::{ChurnEvent, ChurnOp, ChurnSchedule};
pub use failure::{FailureEvent, FailureSchedule};
