//! Fabric churn schedules: when chassis join and leave.
//!
//! The elasticity experiment (E11) drives an [`ElasticCluster`] with a
//! [`ChurnSchedule`]: a time-ordered list of hot-add and remove events.
//! Schedules are either explicit (deterministic tests) or periodic
//! (steady add/remove cycling over a horizon).
//!
//! [`ElasticCluster`]: ../../fcc_elastic/composer/struct.ElasticCluster.html

use fcc_sim::SimTime;

/// What a churn event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// Hot-add a new chassis.
    Add,
    /// Begin a managed drain + remove of node `node`.
    Remove {
        /// Heap node index to remove.
        node: usize,
    },
}

/// One scheduled composition change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the event fires.
    pub at: SimTime,
    /// What it does.
    pub op: ChurnOp,
}

/// A time-ordered schedule of composition changes.
#[derive(Debug, Clone, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// An explicit schedule (sorted by time).
    pub fn explicit(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        ChurnSchedule { events }
    }

    /// A periodic add/remove cycle: starting at `start`, every `period`
    /// an add fires, and half a period later the node added `lag` cycles
    /// earlier is removed — so capacity stays roughly level while the
    /// membership keeps turning over. `first_node` is the heap index the
    /// first add will receive; removal targets count up from there.
    /// Events stop at `horizon`.
    pub fn periodic(start: SimTime, period: SimTime, horizon: SimTime, first_node: usize) -> Self {
        assert!(period > SimTime::ZERO, "period must be positive");
        let mut events = Vec::new();
        let mut t = start;
        let mut cycle = 0usize;
        while t <= horizon {
            events.push(ChurnEvent {
                at: t,
                op: ChurnOp::Add,
            });
            let half = t + SimTime::from_ps(period.as_ps() / 2);
            if half <= horizon {
                events.push(ChurnEvent {
                    at: half,
                    op: ChurnOp::Remove {
                        node: first_node + cycle,
                    },
                });
            }
            cycle += 1;
            t += period;
        }
        ChurnSchedule { events }
    }

    /// All events in time order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of add events.
    pub fn adds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, ChurnOp::Add))
            .count()
    }

    /// Number of remove events.
    pub fn removes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, ChurnOp::Remove { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_alternates_and_respects_horizon() {
        let s = ChurnSchedule::periodic(
            SimTime::from_us(10.0),
            SimTime::from_us(20.0),
            SimTime::from_us(60.0),
            3,
        );
        // Adds at 10, 30, 50; removes at 20, 40, 60.
        assert_eq!(s.adds(), 3);
        assert_eq!(s.removes(), 3);
        let mut last = SimTime::ZERO;
        for e in s.events() {
            assert!(e.at >= last, "sorted");
            assert!(e.at <= SimTime::from_us(60.0));
            last = e.at;
        }
        // The first remove targets the first node added.
        let first_remove = s
            .events()
            .iter()
            .find(|e| matches!(e.op, ChurnOp::Remove { .. }))
            .expect("has removes");
        assert_eq!(first_remove.op, ChurnOp::Remove { node: 3 });
    }

    #[test]
    fn explicit_sorts_by_time() {
        let s = ChurnSchedule::explicit(vec![
            ChurnEvent {
                at: SimTime::from_us(5.0),
                op: ChurnOp::Remove { node: 1 },
            },
            ChurnEvent {
                at: SimTime::from_us(1.0),
                op: ChurnOp::Add,
            },
        ]);
        assert_eq!(s.events()[0].op, ChurnOp::Add);
        assert_eq!(s.adds(), 1);
        assert_eq!(s.removes(), 1);
    }
}
