//! The far-memory KV store.
//!
//! [`KvStore`] owns a keyspace whose values live in a [`UnifiedHeap`]
//! striped across one or more fabric-attached memory nodes (one heap
//! node per configured data range, keys pinned round-robin), so a
//! serving burst spreads over every device controller in the domain
//! instead of convoying on one. Every request moves the value's bytes
//! over the simulated interconnect through a pluggable [`Backend`]:
//!
//! * [`Backend::Fabric`] — the FCC path. A GET is an *immediate* eTrans
//!   (the paper's latency-sensitive bit: no throttle, no queueing) that
//!   copies the value from its heap bin to a staging slot; a PUT is a
//!   normal eTrans tagged with the client's tenant, so the transaction
//!   engine's per-tenant budgets — sourced from the same `fcc-sched`
//!   partition the switches enforce — pace write-heavy tenants.
//! * [`Backend::Rdma`] — the commfabric baseline. The same requests
//!   become one-sided RDMA verbs through an
//!   [`RdmaNic`](fcc_fabric::commfabric::RdmaNic)'s
//!   submission-completion pipeline (a GET is an RDMA read, a PUT an
//!   RDMA write).
//!
//! Bookkeeping (hit counters, version bumps) runs as active messages on
//! a [`FaaEngine`](fcc_core::FaaEngine): a PUT's version bump *joins*
//! its data move — the reply and the version install wait for both — so
//! a version observed by a later GET implies the bytes landed.
//!
//! Requests on the same key follow a reader-shared, writer-exclusive
//! discipline: any number of GETs to one key proceed concurrently (a
//! Zipf-hot key must not serialize the read path), while a PUT waits
//! for the key's in-flight readers and runs alone; arrivals that cannot
//! start queue FIFO behind the key, so a queued PUT also blocks later
//! GETs from overtaking it. That order gives two serving-tier
//! guarantees under concurrent tenants:
//!
//! * **read-your-writes** — a GET sent after a PUT's reply observes at
//!   least that PUT's version;
//! * **no lost updates** — N concurrent PUTs to one key bump the
//!   version exactly N times (each bump is a distinct FAA invocation
//!   joined to its own data move).

use std::collections::{BTreeMap, VecDeque};

use fcc_core::{
    ETrans, ETransDone, FabricBox, FnDone, FnInvoke, HeapError, HeapNodeCfg, PlacementHint,
    SubmitETrans, TransAttrs, TransOwnership, UnifiedHeap,
};
use fcc_fabric::commfabric::{RdmaCompletion, RdmaOp};
use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc_sim::{Component, ComponentId, Counter, Ctx, Histogram, Msg, PendingWork, SimTime};

/// Staging slots rotate through this many entries; slots carry no
/// simulated payload, so rotation only spreads the staging addresses the
/// fabric sees across a bounded region.
const STAGING_SLOTS: u64 = 64;
/// Bytes reserved per staging slot (values are at most 4 KiB in the
/// shipped experiments; 8 KiB leaves headroom).
const STAGING_SLOT_BYTES: u64 = 8192;
/// FAA tag for detached invocations whose completion carries no waiter.
const DETACHED_TAG: u64 = u64::MAX;

/// Which interconnect carries the value bytes.
#[derive(Debug, Clone, Copy)]
pub enum Backend {
    /// FCC: eTrans through a [`fcc_core::TransactionEngine`].
    Fabric {
        /// The transaction engine.
        etrans: ComponentId,
    },
    /// Commfabric baseline: one-sided verbs through an
    /// [`fcc_fabric::commfabric::RdmaNic`].
    Rdma {
        /// The NIC.
        nic: ComponentId,
    },
}

/// A serving operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value.
    Get,
    /// Write a value of the given size.
    Put {
        /// New value size in bytes.
        bytes: u32,
    },
}

/// A client request to the store.
#[derive(Debug, Clone, Copy)]
pub struct KvRequest {
    /// The operation.
    pub op: KvOp,
    /// The key.
    pub key: u64,
    /// The issuing tenant (threads into eTrans pacing attributes).
    pub tenant: u32,
    /// Caller tag echoed in the reply.
    pub tag: u64,
    /// Client-side issue time (echoed so the client measures end to end).
    pub sent_at: SimTime,
    /// Reply receiver.
    pub reply_to: ComponentId,
}

/// The store's reply.
#[derive(Debug, Clone, Copy)]
pub struct KvReply {
    /// The request's tag.
    pub tag: u64,
    /// The key.
    pub key: u64,
    /// Whether the operation succeeded (a GET miss or a failed
    /// allocation/bump replies `false`).
    pub ok: bool,
    /// The key's version after the operation (0 = absent).
    pub version: u64,
    /// Value size moved.
    pub bytes: u32,
    /// Echo of the request's issue time.
    pub sent_at: SimTime,
}

/// Configuration for a [`KvStore`].
#[derive(Debug, Clone)]
pub struct KvStoreCfg {
    /// Data-path backend.
    pub backend: Backend,
    /// FAA engine hosting the bookkeeping functions.
    pub faa: ComponentId,
    /// FAA function id for GET hit counting (detached).
    pub hit_fn: u32,
    /// FAA function id for PUT version bumps (joined).
    pub version_fn: u32,
    /// Fabric addresses the heap's nodes map to (device range bases).
    /// One heap node per entry; keys pin round-robin across them.
    pub data_bases: Vec<u64>,
    /// Fabric addresses of the staging regions (must not overlap any
    /// data range); staging slots stripe across them.
    pub staging_bases: Vec<u64>,
    /// Capacity of each heap node in bytes.
    pub capacity: u64,
    /// One-way client↔store RPC latency applied to replies.
    pub rpc_latency: SimTime,
    /// Host node id used for heap temperature profiling.
    pub host: u16,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    obj: FabricBox,
    version: u64,
    bytes: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DataPhase {
    /// Fabric eTrans or single RDMA verb in flight.
    Moving,
    /// Data landed; only the joined FAA bump is outstanding.
    Landed,
}

/// Per-key in-flight state: shared readers or one exclusive writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockState {
    /// This many GETs in flight.
    Readers(u32),
    /// One PUT in flight.
    Writer,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: KvRequest,
    phase: DataPhase,
    /// A joined FAA invocation is still outstanding.
    faa_outstanding: bool,
    /// The joined FAA invocation executed (false on queue overflow).
    faa_ok: bool,
    /// Version to report (GET: current; PUT: version-after-bump).
    version: u64,
    /// Value bytes on the wire.
    bytes: u32,
}

/// The far-memory KV store component. See the module docs for the data
/// path; public counters feed the experiment scalars.
pub struct KvStore {
    cfg: KvStoreCfg,
    heap: UnifiedHeap,
    index: BTreeMap<u64, Entry>,
    locks: BTreeMap<u64, LockState>,
    waiting: BTreeMap<u64, VecDeque<KvRequest>>,
    pending: BTreeMap<u64, Pending>,
    next_tag: u64,
    /// GET requests served.
    pub gets: Counter,
    /// PUT requests served.
    pub puts: Counter,
    /// GETs that found the key.
    pub hits: Counter,
    /// GETs on absent keys.
    pub misses: Counter,
    /// PUT version bumps dropped by the FAA (queue overflow): the
    /// update's bytes moved but its version did not — a lost update.
    pub lost_updates: Counter,
    /// PUTs failed for lack of heap space.
    pub alloc_failures: Counter,
    /// Store-side service latency (request arrival to reply send, ps).
    pub service: Histogram,
}

impl KvStore {
    /// Creates a store striped over `cfg.data_bases.len()`
    /// fabric-attached memory nodes.
    pub fn new(cfg: KvStoreCfg) -> Self {
        let heap = UnifiedHeap::new(
            cfg.data_bases
                .iter()
                .map(|_| HeapNodeCfg {
                    profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, cfg.capacity),
                })
                .collect(),
        );
        KvStore {
            cfg,
            heap,
            index: BTreeMap::new(),
            locks: BTreeMap::new(),
            waiting: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_tag: 0,
            gets: Counter::new(),
            puts: Counter::new(),
            hits: Counter::new(),
            misses: Counter::new(),
            lost_updates: Counter::new(),
            alloc_failures: Counter::new(),
            service: Histogram::new(),
        }
    }

    /// Pre-populates `key` with a `bytes`-sized value at version 1,
    /// without simulating traffic (experiment setup).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError::OutOfMemory`] when the node is full.
    pub fn preload(&mut self, key: u64, bytes: u32) -> Result<(), HeapError> {
        let obj = self
            .heap
            .alloc(u64::from(bytes), PlacementHint::Pinned(self.node_for(key)))?;
        self.index.insert(
            key,
            Entry {
                obj,
                version: 1,
                bytes,
            },
        );
        Ok(())
    }

    /// The key's current version (0 = absent).
    pub fn version_of(&self, key: u64) -> u64 {
        self.index.get(&key).map_or(0, |e| e.version)
    }

    /// Live keys in the index.
    pub fn live_objects(&self) -> u64 {
        self.index.len() as u64
    }

    /// Index entries whose heap handle no longer resolves or whose
    /// version regressed to 0 — must be zero on a healthy store.
    pub fn integrity_violations(&self) -> u64 {
        self.index
            .values()
            .filter(|e| e.version == 0 || self.heap.locate(e.obj).is_err())
            .count() as u64
    }

    /// Whether a request may start right now under the key's lock.
    /// Queue order is enforced by the caller (a non-empty wait queue
    /// means later arrivals must queue behind it).
    fn admits(&self, req: &KvRequest) -> bool {
        match req.op {
            KvOp::Get => !matches!(self.locks.get(&req.key), Some(LockState::Writer)),
            KvOp::Put { .. } => !self.locks.contains_key(&req.key),
        }
    }

    /// Takes the key's lock for a started (async) request.
    fn acquire(&mut self, key: u64, op: KvOp) {
        match op {
            KvOp::Get => {
                let n = match self.locks.get(&key) {
                    Some(LockState::Readers(n)) => n + 1,
                    _ => 1,
                };
                self.locks.insert(key, LockState::Readers(n));
            }
            KvOp::Put { .. } => {
                self.locks.insert(key, LockState::Writer);
            }
        }
    }

    /// Releases one holder of the key's lock.
    fn release(&mut self, key: u64) {
        match self.locks.get_mut(&key) {
            Some(LockState::Readers(n)) if *n > 1 => *n -= 1,
            Some(_) => {
                self.locks.remove(&key);
            }
            None => {}
        }
    }

    /// Heap node (and so device) a key's value pins to.
    fn node_for(&self, key: u64) -> usize {
        (key % self.cfg.data_bases.len() as u64) as usize
    }

    fn staging_addr(&self, tag: u64) -> u64 {
        let stripe = (tag % self.cfg.staging_bases.len() as u64) as usize;
        self.cfg.staging_bases[stripe] + (tag % STAGING_SLOTS) * STAGING_SLOT_BYTES
    }

    fn value_addr(&self, entry: &Entry) -> Option<u64> {
        self.heap
            .locate(entry.obj)
            .ok()
            .map(|(node, addr)| self.cfg.data_bases[node] + addr)
    }

    fn reply(&mut self, ctx: &mut Ctx<'_>, req: &KvRequest, ok: bool, version: u64, bytes: u32) {
        self.service.record_time(ctx.now() - req.sent_at);
        ctx.send(
            req.reply_to,
            self.cfg.rpc_latency,
            KvReply {
                tag: req.tag,
                key: req.key,
                ok,
                version,
                bytes,
                sent_at: req.sent_at,
            },
        );
    }

    fn submit_data_move(
        &self,
        ctx: &mut Ctx<'_>,
        req: &KvRequest,
        tag: u64,
        src: u64,
        dst: u64,
        bytes: u32,
    ) {
        match self.cfg.backend {
            Backend::Fabric { etrans } => {
                let get = matches!(req.op, KvOp::Get);
                ctx.send(
                    etrans,
                    SimTime::ZERO,
                    SubmitETrans {
                        etrans: ETrans {
                            src: vec![(src, bytes)],
                            dst: vec![(dst, bytes)],
                            // GETs ride the paper's immediate bit (the
                            // latency-sensitive path); PUTs are paced by
                            // the tenant's budget.
                            immediate: get,
                            attrs: TransAttrs {
                                tenant: req.tenant,
                                priority: u8::from(get),
                            },
                            ownership: TransOwnership::Caller,
                        },
                        tag,
                        reply_to: ctx.self_id(),
                    },
                );
            }
            Backend::Rdma { nic } => {
                ctx.send(
                    nic,
                    SimTime::ZERO,
                    RdmaOp {
                        write: matches!(req.op, KvOp::Put { .. }),
                        bytes,
                        tag,
                        reply_to: ctx.self_id(),
                    },
                );
            }
        }
    }

    fn invoke_faa(&self, ctx: &mut Ctx<'_>, function: u32, tag: u64) {
        ctx.send(
            self.cfg.faa,
            SimTime::ZERO,
            FnInvoke {
                function,
                kind: 0,
                bytes: 8,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    /// Starts a request on a key with nothing in flight. Returns `true`
    /// if the key became busy (an async path was taken).
    fn start(&mut self, ctx: &mut Ctx<'_>, req: KvRequest) -> bool {
        match req.op {
            KvOp::Get => {
                self.gets.inc();
                let Some(entry) = self.index.get(&req.key).copied() else {
                    self.misses.inc();
                    self.reply(ctx, &req, false, 0, 0);
                    return false;
                };
                self.hits.inc();
                // Temperature profiling: the heap learns the access.
                let _ = self.heap.access(entry.obj, self.cfg.host, false);
                let Some(src) = self.value_addr(&entry) else {
                    self.reply(ctx, &req, false, 0, 0);
                    return false;
                };
                let tag = self.next_tag;
                self.next_tag += 1;
                let dst = self.staging_addr(tag);
                self.acquire(req.key, req.op);
                self.pending.insert(
                    tag,
                    Pending {
                        req,
                        phase: DataPhase::Moving,
                        faa_outstanding: false,
                        faa_ok: true,
                        version: entry.version,
                        bytes: entry.bytes,
                    },
                );
                self.submit_data_move(ctx, &req, tag, src, dst, entry.bytes);
                // Hit accounting is detached: nobody joins on it.
                self.invoke_faa(ctx, self.cfg.hit_fn, DETACHED_TAG);
                true
            }
            KvOp::Put { bytes } => {
                self.puts.inc();
                let entry = match self.index.get(&req.key).copied() {
                    Some(e) if e.bytes == bytes => e,
                    Some(e) => {
                        // Size changed: reallocate the bin on the key's
                        // pinned stripe.
                        let _ = self.heap.free(e.obj);
                        let hint = PlacementHint::Pinned(self.node_for(req.key));
                        match self.heap.alloc(u64::from(bytes), hint) {
                            Ok(obj) => {
                                let e2 = Entry {
                                    obj,
                                    version: e.version,
                                    bytes,
                                };
                                self.index.insert(req.key, e2);
                                e2
                            }
                            Err(_) => {
                                self.alloc_failures.inc();
                                self.index.remove(&req.key);
                                self.reply(ctx, &req, false, 0, 0);
                                return false;
                            }
                        }
                    }
                    None => match self.heap.alloc(
                        u64::from(bytes),
                        PlacementHint::Pinned(self.node_for(req.key)),
                    ) {
                        Ok(obj) => {
                            let e = Entry {
                                obj,
                                version: 0,
                                bytes,
                            };
                            self.index.insert(req.key, e);
                            e
                        }
                        Err(_) => {
                            self.alloc_failures.inc();
                            self.reply(ctx, &req, false, 0, 0);
                            return false;
                        }
                    },
                };
                let _ = self.heap.access(entry.obj, self.cfg.host, true);
                let Some(dst) = self.value_addr(&entry) else {
                    self.reply(ctx, &req, false, 0, 0);
                    return false;
                };
                let tag = self.next_tag;
                self.next_tag += 1;
                let src = self.staging_addr(tag);
                self.acquire(req.key, req.op);
                self.pending.insert(
                    tag,
                    Pending {
                        req,
                        phase: DataPhase::Moving,
                        faa_outstanding: true,
                        faa_ok: false,
                        version: entry.version + 1,
                        bytes,
                    },
                );
                self.submit_data_move(ctx, &req, tag, src, dst, bytes);
                // The version bump joins the data move: the reply (and
                // the version install) wait for both.
                self.invoke_faa(ctx, self.cfg.version_fn, tag);
                true
            }
        }
    }

    /// Completes the pending op under `tag` if both its data move and
    /// any joined FAA invocation have resolved.
    fn try_finish(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let Some(p) = self.pending.get(&tag).copied() else {
            return;
        };
        if p.phase != DataPhase::Landed || p.faa_outstanding {
            return;
        }
        self.pending.remove(&tag);
        let (ok, version) = match p.req.op {
            KvOp::Get => (true, p.version),
            KvOp::Put { .. } => {
                if p.faa_ok {
                    if let Some(e) = self.index.get_mut(&p.req.key) {
                        e.version = p.version;
                    }
                    (true, p.version)
                } else {
                    // Data landed but the bump was dropped: lost update.
                    self.lost_updates.inc();
                    (false, p.version.saturating_sub(1))
                }
            }
        };
        self.reply(ctx, &p.req, ok, version, p.bytes);
        self.release(p.req.key);
        self.drain(ctx, p.req.key);
    }

    /// Admits the key's wait queue in FIFO order for as long as the lock
    /// allows: a run of GETs starts together (shared), a PUT starts only
    /// once the key is idle and then stops the drain (exclusive).
    /// Synchronous completions (misses, failed allocations) take no
    /// lock, so draining continues past them.
    fn drain(&mut self, ctx: &mut Ctx<'_>, key: u64) {
        loop {
            let Some(front) = self.waiting.get(&key).and_then(|q| q.front()).copied() else {
                self.waiting.remove(&key);
                return;
            };
            if !self.admits(&front) {
                return;
            }
            if let Some(queue) = self.waiting.get_mut(&key) {
                queue.pop_front();
                if queue.is_empty() {
                    self.waiting.remove(&key);
                }
            }
            self.start(ctx, front);
        }
    }
}

impl Component for KvStore {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<KvRequest>() {
            Ok(req) => {
                // FIFO per key: anything already queued goes first, even
                // when the lock would admit this request (a waiting PUT
                // must not be overtaken by later GETs forever).
                let queued = self.waiting.contains_key(&req.key);
                if queued || !self.admits(&req) {
                    self.waiting.entry(req.key).or_default().push_back(req);
                } else {
                    self.start(ctx, req);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ETransDone>() {
            Ok(done) => {
                if let Some(p) = self.pending.get_mut(&done.tag) {
                    p.phase = DataPhase::Landed;
                }
                self.try_finish(ctx, done.tag);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RdmaCompletion>() {
            Ok(done) => {
                if let Some(p) = self.pending.get_mut(&done.tag) {
                    p.phase = DataPhase::Landed;
                }
                self.try_finish(ctx, done.tag);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<FnDone>() {
            Ok(done) => {
                if done.tag == DETACHED_TAG {
                    return; // Detached hit accounting: nothing joins.
                }
                if let Some(p) = self.pending.get_mut(&done.tag) {
                    p.faa_outstanding = false;
                    p.faa_ok = done.ok;
                }
                self.try_finish(ctx, done.tag);
            }
            // fcc-lint: allow(panic-in-lib) -- dispatch invariant: the store is only wired to components speaking these four messages
            Err(m) => panic!("kv store: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        let backend = match self.cfg.backend {
            Backend::Fabric { etrans } => etrans,
            Backend::Rdma { nic } => nic,
        };
        for (tag, p) in &self.pending {
            let what = match p.req.op {
                KvOp::Get => format!("kv get key {} (tag {tag})", p.req.key),
                KvOp::Put { bytes } => {
                    format!("kv put key {} {}B (tag {tag})", p.req.key, bytes)
                }
            };
            let waiting_on = if p.phase == DataPhase::Moving {
                Some(backend)
            } else {
                Some(self.cfg.faa)
            };
            out.push(PendingWork { what, waiting_on });
        }
    }
}
