//! Open-loop serving clients.
//!
//! A [`ServeClient`] models one tenant's request stream against a
//! [`KvStore`](crate::KvStore): arrivals come from a
//! [`DiurnalModulator`] (Poisson gaps whose rate follows a
//! piecewise-linear sim-time curve), keys from a Zipf popularity
//! distribution, and the read/write mix and value sizes from seeded
//! draws — open loop, so the client keeps issuing at the curve's rate
//! no matter how slow the store gets (the tail shows up instead of the
//! throughput collapsing).
//!
//! Completions land in two [`SloAccountant`]s — peak and trough,
//! selected by the request's *issue* time against two configured
//! measurement windows. Requests issued during the ramps between them
//! are served but not accounted: the post-peak ramp drains whatever
//! backlog the peak built, and folding those latencies into the trough
//! would charge the trough for the peak's congestion. Tracing (when
//! enabled) emits one `serve`-category span per request named
//! `req-t{NNN}` so `trace-report` recovers the same SLO table from the
//! trace alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fcc_sim::{Component, ComponentId, Counter, Ctx, Msg, PendingWork, SimTime};
use fcc_telemetry::{SloAccountant, TraceCtx, Track};
use fcc_workloads::{DiurnalModulator, ZipfStream};

use crate::store::{KvOp, KvReply, KvRequest};

/// Trace ids for serving requests live in a reserved node-id namespace
/// (`0xFFFE`) so they never collide with FHA or eTrans ids.
fn req_trace_ctx(tenant: u32, seq: u64) -> TraceCtx {
    TraceCtx::new((0xFFFE_u64 << 48) | (u64::from(tenant) << 32) | (seq & 0xFFFF_FFFF))
}

/// Kick-off message: schedules the client's first arrival.
#[derive(Debug, Clone, Copy)]
pub struct StartClient;

/// Self-message: issue the request due now.
#[derive(Debug, Clone, Copy)]
struct Tick;

/// Configuration for a [`ServeClient`].
pub struct ServeClientCfg {
    /// The store to drive.
    pub store: ComponentId,
    /// This client's tenant id (shared with the fabric scheduler).
    pub tenant: u32,
    /// Arrival process.
    pub arrivals: DiurnalModulator,
    /// Key popularity over `0..keyspace`.
    pub keys: ZipfStream,
    /// Fraction of requests that are GETs (the rest are PUTs).
    pub read_fraction: f64,
    /// PUT value sizes as `(bytes, weight)` pairs.
    pub value_sizes: Vec<(u32, f64)>,
    /// One-way client↔store RPC latency.
    pub rpc_latency: SimTime,
    /// Issue no arrivals at or after this instant.
    pub stop_at: SimTime,
    /// SLO target for attainment accounting.
    pub slo_target: SimTime,
    /// Requests *issued* inside `[peak.0, peak.1)` account to the peak
    /// window.
    pub peak: (SimTime, SimTime),
    /// Requests *issued* inside `[trough.0, trough.1)` account to the
    /// trough window. Requests issued outside both windows (the ramps)
    /// are served but not accounted.
    pub trough: (SimTime, SimTime),
    /// RNG seed (mix + key + size draws).
    pub seed: u64,
}

/// One tenant's open-loop request generator and SLO bookkeeper.
pub struct ServeClient {
    cfg: ServeClientCfg,
    rng: StdRng,
    trace: Track,
    span_name: String,
    next_tag: u64,
    peak_slo: SloAccountant,
    trough_slo: SloAccountant,
    /// Requests issued.
    pub issued: Counter,
    /// Replies received.
    pub completed: Counter,
    /// Replies with `ok = false` (misses, failed allocations, lost
    /// version bumps).
    pub failed: Counter,
}

impl ServeClient {
    /// Creates a client; nothing runs until it receives [`StartClient`].
    pub fn new(cfg: ServeClientCfg) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let span_name = format!("req-t{:03}", cfg.tenant);
        let peak_slo = SloAccountant::new(cfg.slo_target);
        let trough_slo = SloAccountant::new(cfg.slo_target);
        ServeClient {
            cfg,
            rng,
            trace: Track::default(),
            span_name,
            next_tag: 0,
            peak_slo,
            trough_slo,
            issued: Counter::new(),
            completed: Counter::new(),
            failed: Counter::new(),
        }
    }

    /// Attaches a telemetry track; the client then emits one
    /// `serve`-category span per completed request.
    pub fn set_trace(&mut self, track: Track) {
        self.trace = track;
    }

    /// SLO accounting for requests issued inside the peak window.
    pub fn peak_slo(&self) -> &SloAccountant {
        &self.peak_slo
    }

    /// SLO accounting for requests issued inside the trough window.
    pub fn trough_slo(&self) -> &SloAccountant {
        &self.trough_slo
    }

    fn in_window(window: (SimTime, SimTime), at: SimTime) -> bool {
        at >= window.0 && at < window.1
    }

    fn draw_op(&mut self) -> KvOp {
        if self.rng.gen_range(0.0..1.0) < self.cfg.read_fraction {
            return KvOp::Get;
        }
        let total: f64 = self.cfg.value_sizes.iter().map(|&(_, w)| w).sum();
        let mut pick = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for &(bytes, w) in &self.cfg.value_sizes {
            if pick < w {
                return KvOp::Put { bytes };
            }
            pick -= w;
        }
        let bytes = self.cfg.value_sizes.last().map_or(64, |&(b, _)| b);
        KvOp::Put { bytes }
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_>) {
        let at = self.cfg.arrivals.next(&mut self.rng);
        if at < self.cfg.stop_at {
            let now = ctx.now();
            let delay = if at > now { at - now } else { SimTime::ZERO };
            ctx.send_self(delay, Tick);
        }
    }
}

impl Component for ServeClient {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<StartClient>() {
            Ok(StartClient) => {
                self.schedule_next(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Tick>() {
            Ok(Tick) => {
                let key = self.cfg.keys.next(&mut self.rng);
                let op = self.draw_op();
                let tag = self.next_tag;
                self.next_tag += 1;
                self.issued.inc();
                ctx.send(
                    self.cfg.store,
                    self.cfg.rpc_latency,
                    KvRequest {
                        op,
                        key,
                        tenant: self.cfg.tenant,
                        tag,
                        sent_at: ctx.now(),
                        reply_to: ctx.self_id(),
                    },
                );
                self.schedule_next(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<KvReply>() {
            Ok(reply) => {
                self.completed.inc();
                if !reply.ok {
                    self.failed.inc();
                }
                let now = ctx.now();
                let latency = now - reply.sent_at;
                if Self::in_window(self.cfg.peak, reply.sent_at) {
                    self.peak_slo.record(self.cfg.tenant, latency);
                } else if Self::in_window(self.cfg.trough, reply.sent_at) {
                    self.trough_slo.record(self.cfg.tenant, latency);
                }
                self.trace.span(
                    "serve",
                    &self.span_name,
                    reply.sent_at,
                    now,
                    req_trace_ctx(self.cfg.tenant, reply.tag),
                );
            }
            // fcc-lint: allow(panic-in-lib) -- dispatch invariant: only the store and the client itself send to this component
            Err(m) => panic!("serve client: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        let inflight = self.issued.get().saturating_sub(self.completed.get());
        if inflight > 0 {
            out.push(PendingWork {
                what: format!("{inflight} serving request(s) awaiting replies"),
                waiting_on: Some(self.cfg.store),
            });
        }
    }
}
