#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A trace-driven far-memory serving tier over the UniFabric runtime.
//!
//! The paper argues fabric-centric resource management pays off at
//! *application* scale; this crate supplies the application. A
//! [`KvStore`] keeps its keyspace in the [`fcc_core::UnifiedHeap`] and
//! moves value bytes through a pluggable backend — the FCC path
//! (eTrans through the [`fcc_core::TransactionEngine`], GETs on the
//! paper's immediate bit, PUTs paced by per-tenant budgets) or the
//! commfabric baseline (one-sided verbs through an
//! [`fcc_fabric::commfabric::RdmaNic`]) — while hit counters and
//! version bumps run as active messages on the
//! [`fcc_core::FaaEngine`]. An open-loop [`ServeClient`] population
//! drives it: Poisson arrivals modulated by a deterministic diurnal
//! curve, Zipf key popularity, configurable read/write mix and value
//! sizes, one `fcc-sched` tenant id per client so fabric governance
//! composes. Per-tenant SLO accounting lands in
//! [`fcc_telemetry::SloAccountant`]s split by peak/trough issue window.
//!
//! Experiment E13 (`fcc-bench`) runs this tier pod-scale over the
//! 8-domain sharded chain.

pub mod client;
pub mod store;

pub use client::{ServeClient, ServeClientCfg, StartClient};
pub use store::{Backend, KvOp, KvReply, KvRequest, KvStore, KvStoreCfg};
