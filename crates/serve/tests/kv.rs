//! KV semantics under concurrency: read-your-writes and no-lost-updates.
//!
//! The store serializes requests per key and joins each PUT's version
//! bump (an FAA invocation) with its data move; these tests drive a real
//! single-switch fabric topology — FHA, switch, device, migration agent,
//! transaction engine, FAA engine — and check the guarantees end to end.

use std::collections::VecDeque;

use fcc_core::{FaaEngine, FunctionTemplate, MigrationAgent, TransactionEngine};
use fcc_fabric::commfabric::{RdmaConfig, RdmaNic};
use fcc_fabric::endpoint::{Endpoint, FixedLatencyMemory};
use fcc_fabric::topology::{self, TopologySpec, FAM_BASE};
use fcc_serve::{Backend, KvOp, KvReply, KvRequest, KvStore, KvStoreCfg};
use fcc_sim::{Component, ComponentId, Ctx, Engine, Msg, SimTime};

const KEY: u64 = 42;

/// Builds engine + fabric + store on the given backend; returns
/// `(engine, store_id)`.
fn setup(seed: u64, rdma: bool) -> (Engine, ComponentId) {
    setup_with_agents(seed, rdma, 1)
}

/// Like [`setup`], with `n_agents` migration agents behind the fabric
/// backend (the transaction engine's job-level concurrency).
fn setup_with_agents(seed: u64, rdma: bool, n_agents: usize) -> (Engine, ComponentId) {
    let mut engine = Engine::new(seed);
    let backend = if rdma {
        let nic = engine.add_component("nic", RdmaNic::new(RdmaConfig::kernel_bypass()));
        Backend::Rdma { nic }
    } else {
        let dev: Box<dyn Endpoint> = Box::new(FixedLatencyMemory::new(
            SimTime::from_ns(100.0),
            SimTime::from_ns(100.0),
            64 << 20,
        ));
        let topo = topology::single_switch(&mut engine, TopologySpec::default(), 1, vec![dev]);
        let agents: Vec<ComponentId> = (0..n_agents)
            .map(|a| {
                engine.add_component(
                    format!("agent{a}"),
                    MigrationAgent::new(topo.hosts[0].fha, 4096, 4),
                )
            })
            .collect();
        let etrans = engine.add_component("etrans", TransactionEngine::new(agents));
        Backend::Fabric { etrans }
    };
    let faa = engine.add_component(
        "faa",
        FaaEngine::new(
            vec![
                FunctionTemplate::uniform(0, SimTime::from_ns(50.0), 0.0, 1 << 16),
                FunctionTemplate::uniform(1, SimTime::from_ns(80.0), 0.0, 1 << 16),
            ],
            SimTime::from_ns(100.0),
            8,
        ),
    );
    let store = engine.add_component(
        "kv",
        KvStore::new(KvStoreCfg {
            backend,
            faa,
            hit_fn: 0,
            version_fn: 1,
            data_bases: vec![FAM_BASE],
            staging_bases: vec![FAM_BASE + (32 << 20)],
            capacity: 16 << 20,
            rpc_latency: SimTime::from_ns(120.0),
            host: 0,
        }),
    );
    (engine, store)
}

/// Kick-off for the scripted driver.
#[derive(Debug, Clone, Copy)]
struct Go;

/// Issues its script one request at a time, each sent only after the
/// previous one's reply — the client-visible ordering the guarantees
/// are stated over.
struct Driver {
    store: ComponentId,
    tenant: u32,
    script: VecDeque<KvOp>,
    next_tag: u64,
    replies: Vec<KvReply>,
}

impl Driver {
    fn new(store: ComponentId, tenant: u32, script: Vec<KvOp>) -> Self {
        Driver {
            store,
            tenant,
            script: script.into(),
            next_tag: 0,
            replies: Vec::new(),
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(op) = self.script.pop_front() {
            let tag = self.next_tag;
            self.next_tag += 1;
            ctx.send(
                self.store,
                SimTime::from_ns(120.0),
                KvRequest {
                    op,
                    key: KEY,
                    tenant: self.tenant,
                    tag,
                    sent_at: ctx.now(),
                    reply_to: ctx.self_id(),
                },
            );
        }
    }
}

impl Component for Driver {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Go>() {
            Ok(Go) => {
                self.issue(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<KvReply>() {
            Ok(reply) => {
                self.replies.push(reply);
                self.issue(ctx);
            }
            Err(m) => panic!("driver: unexpected message {}", m.type_name()),
        }
    }
}

/// A fire-everything-at-once driver for the concurrency tests.
struct Burst {
    store: ComponentId,
    tenant: u32,
    op: KvOp,
    count: u64,
    replies: Vec<KvReply>,
}

impl Component for Burst {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Go>() {
            Ok(Go) => {
                for tag in 0..self.count {
                    ctx.send(
                        self.store,
                        SimTime::from_ns(120.0),
                        KvRequest {
                            op: self.op,
                            key: KEY,
                            tenant: self.tenant,
                            tag,
                            sent_at: ctx.now(),
                            reply_to: ctx.self_id(),
                        },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<KvReply>() {
            Ok(reply) => self.replies.push(reply),
            Err(m) => panic!("burst: unexpected message {}", m.type_name()),
        }
    }
}

fn read_your_writes_on(rdma: bool) {
    let (mut engine, store) = setup(11, rdma);
    let script = vec![
        KvOp::Put { bytes: 1024 },
        KvOp::Get,
        KvOp::Put { bytes: 1024 },
        KvOp::Get,
    ];
    let driver = engine.add_component("driver", Driver::new(store, 3, script));
    engine.post(driver, SimTime::ZERO, Go);
    engine.run_until_idle();
    let d = engine.component::<Driver>(driver);
    assert_eq!(d.replies.len(), 4);
    assert!(d.replies.iter().all(|r| r.ok), "all ops succeed");
    // Each GET observes at least the version its preceding PUT installed.
    assert_eq!(d.replies[0].version, 1);
    assert_eq!(d.replies[1].version, 1, "read your write");
    assert_eq!(d.replies[2].version, 2);
    assert_eq!(d.replies[3].version, 2, "read your second write");
    assert_eq!(d.replies[1].bytes, 1024);
    let s = engine.component::<KvStore>(store);
    assert_eq!(s.version_of(KEY), 2);
    assert_eq!(s.lost_updates.get(), 0);
    assert_eq!(s.integrity_violations(), 0);
}

#[test]
fn read_your_writes_fabric() {
    read_your_writes_on(false);
}

#[test]
fn read_your_writes_rdma_baseline() {
    read_your_writes_on(true);
}

#[test]
fn no_lost_updates_under_concurrent_tenants() {
    let (mut engine, store) = setup(23, false);
    // Two tenants, 50 concurrent PUTs each, all to one key, all in
    // flight at once: per-key serialization + joined version bumps must
    // count every single one.
    let a = engine.add_component(
        "burst-a",
        Burst {
            store,
            tenant: 1,
            op: KvOp::Put { bytes: 256 },
            count: 50,
            replies: Vec::new(),
        },
    );
    let b = engine.add_component(
        "burst-b",
        Burst {
            store,
            tenant: 2,
            op: KvOp::Put { bytes: 256 },
            count: 50,
            replies: Vec::new(),
        },
    );
    engine.post(a, SimTime::ZERO, Go);
    engine.post(b, SimTime::ZERO, Go);
    engine.run_until_idle();
    let s = engine.component::<KvStore>(store);
    assert_eq!(s.version_of(KEY), 100, "every update counted exactly once");
    assert_eq!(s.lost_updates.get(), 0);
    assert_eq!(s.puts.get(), 100);
    assert_eq!(s.integrity_violations(), 0);
    let ra = &engine.component::<Burst>(a).replies;
    let rb = &engine.component::<Burst>(b).replies;
    assert_eq!(ra.len() + rb.len(), 100);
    assert!(ra.iter().chain(rb.iter()).all(|r| r.ok));
    // Versions handed back are exactly 1..=100, each once.
    let mut versions: Vec<u64> = ra.iter().chain(rb.iter()).map(|r| r.version).collect();
    versions.sort_unstable();
    assert_eq!(versions, (1..=100).collect::<Vec<u64>>());
}

/// Runs `gets` concurrent GETs to one preloaded key on a fabric with 16
/// migration agents; returns the sim time when everything drained.
fn gets_wall_time(gets: u64) -> SimTime {
    let (mut engine, store) = setup_with_agents(31, false, 16);
    #[allow(clippy::expect_used)]
    engine
        .component_mut::<KvStore>(store)
        .preload(KEY, 1024)
        .expect("preload fits");
    let burst = engine.add_component(
        "get-burst",
        Burst {
            store,
            tenant: 1,
            op: KvOp::Get,
            count: gets,
            replies: Vec::new(),
        },
    );
    engine.post(burst, SimTime::ZERO, Go);
    engine.run_until_idle();
    let replies = &engine.component::<Burst>(burst).replies;
    assert_eq!(replies.len() as u64, gets);
    assert!(replies.iter().all(|r| r.ok && r.version == 1));
    engine.now()
}

/// GETs to one key share the lock: sixteen readers fired at once (with
/// enough agents that the data path is not the bottleneck) overlap —
/// wall time stays a small multiple of one GET's (per-flit fabric costs
/// still add up), nowhere near the 16x a serialized read path would
/// take. A Zipf-hot key must not serialize the read path.
#[test]
fn concurrent_gets_share_the_key() {
    let one = gets_wall_time(1);
    let sixteen = gets_wall_time(16);
    assert!(
        sixteen.as_ns() < 4.0 * one.as_ns(),
        "16 shared readers took {} ns vs {} ns for one — reads serialized?",
        sixteen.as_ns(),
        one.as_ns()
    );
}

#[test]
fn get_miss_and_preload() {
    let (mut engine, store) = setup(5, false);
    engine
        .component_mut::<KvStore>(store)
        .preload(KEY, 512)
        .expect("preload fits");
    let driver = engine.add_component("driver", Driver::new(store, 0, vec![KvOp::Get]));
    // A second driver GETs a key that was never written.
    struct MissProbe {
        store: ComponentId,
        reply: Option<KvReply>,
    }
    impl Component for MissProbe {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<Go>() {
                Ok(Go) => {
                    ctx.send(
                        self.store,
                        SimTime::ZERO,
                        KvRequest {
                            op: KvOp::Get,
                            key: 9999,
                            tenant: 0,
                            tag: 0,
                            sent_at: ctx.now(),
                            reply_to: ctx.self_id(),
                        },
                    );
                    return;
                }
                Err(m) => m,
            };
            match msg.downcast::<KvReply>() {
                Ok(r) => self.reply = Some(r),
                Err(m) => panic!("probe: unexpected message {}", m.type_name()),
            }
        }
    }
    let probe = engine.add_component("probe", MissProbe { store, reply: None });
    engine.post(driver, SimTime::ZERO, Go);
    engine.post(probe, SimTime::ZERO, Go);
    engine.run_until_idle();
    let hit = &engine.component::<Driver>(driver).replies[0];
    assert!(hit.ok);
    assert_eq!((hit.version, hit.bytes), (1, 512));
    let miss = engine
        .component::<MissProbe>(probe)
        .reply
        .expect("miss replied");
    assert!(!miss.ok);
    assert_eq!(miss.version, 0);
    let s = engine.component::<KvStore>(store);
    assert_eq!((s.hits.get(), s.misses.get()), (1, 1));
}
