#!/usr/bin/env bash
# Workspace quality gate: formatting, lints, tests, and the coherence
# and reconfiguration model checks. CI runs exactly this script; run it
# locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings, unwrap/expect banned in library code)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings: broken intra-doc links fail the gate)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> fcc-lint (determinism & layering gate)"
lint_artifacts="${LINT_ARTIFACT_DIR:-target/lint}"
mkdir -p "$lint_artifacts"
cargo run --release -p fcc-lint -- --json "$lint_artifacts/lint-report.json"

echo "==> cargo test"
cargo test --workspace -q

echo "==> coherence model check (exhaustive, small configs)"
cargo run --release -p fcc-verify --bin check-coherence

echo "==> reconfiguration model check (hot-add/hot-remove plans vs in-flight traffic)"
cargo run --release -p fcc-verify --bin check-reconfig

echo "==> scheduler isolation model check (credit partitions vs every demand schedule)"
cargo run --release -p fcc-verify --bin check-sched

artifacts="${TELEMETRY_ARTIFACT_DIR:-target/telemetry-smoke}"
mkdir -p "$artifacts"

echo "==> routing model check (escape-VC CDG acyclic, credit ledgers conserve)"
cargo run --release -p fcc-verify --bin check-routing -- \
    --report "$artifacts/routing-report.json"
grep -q '"status":"ok"' "$artifacts/routing-report.json"

echo "==> traced experiment smoke (telemetry export end to end)"
cargo run --release -p fcc-bench --bin experiments -- --quick e3a \
    --json "$artifacts/results.json" \
    --trace "$artifacts/trace.json" \
    --metrics "$artifacts/metrics.json"
cargo run --release -p fcc-telemetry --bin trace-report -- "$artifacts/trace.json" \
    > "$artifacts/trace-report.txt"
grep -q "time by category" "$artifacts/trace-report.txt"

echo "==> churn smoke (E11: managed drain loses nothing, never wedges)"
cargo run --release -p fcc-bench --bin experiments -- --quick --seed 11 e11 \
    --json "$artifacts/churn-results.json" \
    --trace "$artifacts/churn-trace.json"
grep -q '"managed_lost_objects": 0' "$artifacts/churn-results.json"
grep -q '"managed_deadlocked": 0' "$artifacts/churn-results.json"
# Reconfiguration epochs must be visible in the exported trace.
grep -q 'reconfig' "$artifacts/churn-trace.json"

echo "==> interference smoke (E12: scheduler bounds victim p99, ledgers audit clean)"
cargo run --release -p fcc-bench --bin experiments -- --quick e12 \
    --json "$artifacts/e12-results.json"
grep -q '"ledger_violations": 0' "$artifacts/e12-results.json"
grep -q '"isolation_bounded": 1' "$artifacts/e12-results.json"

echo "==> serving smoke (E13: per-tenant SLO bounded at peak, nothing lost, ledgers clean)"
cargo run --release -p fcc-bench --bin experiments -- --quick e13 \
    --json "$artifacts/e13-results.json"
grep -q '"lost_objects": 0' "$artifacts/e13-results.json"
grep -q '"ledger_violations": 0' "$artifacts/e13-results.json"
grep -q '"slo_bounded": 1' "$artifacts/e13-results.json"

echo "==> wormhole pod smoke (E14: spine-leaf pod drains deadlock-free, credits conserved)"
cargo run --release -p fcc-bench --bin experiments -- --quick e14 \
    --json "$artifacts/e14-results.json"
grep -q '"deadlock_events": 0' "$artifacts/e14-results.json"
grep -q '"credit_violations": 0' "$artifacts/e14-results.json"
grep -q '"quiesced_clean": 1' "$artifacts/e14-results.json"

echo "all checks passed"
