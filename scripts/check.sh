#!/usr/bin/env bash
# Workspace quality gate: formatting, lints, tests, and the coherence
# model check. CI runs exactly this script; run it locally before
# pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings, unwrap/expect banned in library code)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> coherence model check (exhaustive, small configs)"
cargo run --release -p fcc-verify --bin check-coherence

echo "==> traced experiment smoke (telemetry export end to end)"
artifacts="${TELEMETRY_ARTIFACT_DIR:-target/telemetry-smoke}"
mkdir -p "$artifacts"
cargo run --release -p fcc-bench --bin experiments -- --quick e3a \
    --json "$artifacts/results.json" \
    --trace "$artifacts/trace.json" \
    --metrics "$artifacts/metrics.json"
cargo run --release -p fcc-telemetry --bin trace-report -- "$artifacts/trace.json" \
    > "$artifacts/trace-report.txt"
grep -q "time by category" "$artifacts/trace-report.txt"

echo "all checks passed"
