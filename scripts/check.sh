#!/usr/bin/env bash
# Workspace quality gate: formatting, lints, tests, and the coherence
# model check. CI runs exactly this script; run it locally before
# pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings, unwrap/expect banned in library code)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> coherence model check (exhaustive, small configs)"
cargo run --release -p fcc-verify --bin check-coherence

echo "all checks passed"
