#!/usr/bin/env bash
# Wall-clock regression gate: measures every experiment scenario (median
# of 3 runs) and compares against the committed baseline in
# BENCH_experiments.json, failing on a >25% wall-clock regression or any
# event-count drift (event counts are deterministic, so drift means the
# simulation changed, not the machine).
#
# A second gate covers the sharded executor: the e3x scenario (64
# tenants over an 8-domain chain) runs serially and with --shards 4,
# requiring equal event counts and byte-identical exports everywhere,
# and a >=1.5x median wall-clock win when the host has >=4 CPUs.
#
# The comparison reports land in $BENCH_ARTIFACT_DIR (default
# target/bench-gate) for CI to upload. Knobs:
#   BENCH_GATE_TOLERANCE    allowed wall-clock regression, percent (25)
#   BENCH_GATE_RUNS         runs per scenario, median taken (3)
#   BENCH_GATE_SHARDS       worker count for the shards gate (4)
#   BENCH_GATE_MIN_SPEEDUP  required serial/sharded speedup (1.5)
#
# After an intentional perf change, refresh the baseline with
#   cargo run --release -p fcc-bench --bin bench_gate -- update
# and commit BENCH_experiments.json (the update also appends the new
# medians to the BENCH_history.json trajectory).
set -euo pipefail
cd "$(dirname "$0")/.."

artifacts="${BENCH_ARTIFACT_DIR:-target/bench-gate}"
tolerance="${BENCH_GATE_TOLERANCE:-25}"
runs="${BENCH_GATE_RUNS:-3}"
shards="${BENCH_GATE_SHARDS:-4}"
min_speedup="${BENCH_GATE_MIN_SPEEDUP:-1.5}"
mkdir -p "$artifacts"

echo "==> build (release)"
cargo build --release -p fcc-bench --bin bench_gate

echo "==> bench gate (median of $runs runs, tolerance ${tolerance}%)"
./target/release/bench_gate check \
    --baseline BENCH_experiments.json \
    --runs "$runs" \
    --tolerance "$tolerance" \
    --report "$artifacts/bench-comparison.json"

echo "==> shards gate (e3x, --shards $shards, >=${min_speedup}x where measurable)"
./target/release/bench_gate shards \
    --shards "$shards" \
    --runs "$runs" \
    --min-speedup "$min_speedup" \
    --report "$artifacts/shards-report.json"

echo "bench gates passed; reports at $artifacts/"
