#!/usr/bin/env bash
# Wall-clock regression gate: measures every experiment scenario (median
# of 3 runs) and compares against the committed baseline in
# BENCH_experiments.json, failing on a >25% wall-clock regression or any
# event-count drift (event counts are deterministic, so drift means the
# simulation changed, not the machine).
#
# The comparison report lands in $BENCH_ARTIFACT_DIR (default
# target/bench-gate) for CI to upload. Knobs:
#   BENCH_GATE_TOLERANCE  allowed wall-clock regression, percent (25)
#   BENCH_GATE_RUNS       runs per scenario, median taken (3)
#
# After an intentional perf change, refresh the baseline with
#   cargo run --release -p fcc-bench --bin bench_gate -- update
# and commit BENCH_experiments.json.
set -euo pipefail
cd "$(dirname "$0")/.."

artifacts="${BENCH_ARTIFACT_DIR:-target/bench-gate}"
tolerance="${BENCH_GATE_TOLERANCE:-25}"
runs="${BENCH_GATE_RUNS:-3}"
mkdir -p "$artifacts"

echo "==> build (release)"
cargo build --release -p fcc-bench --bin bench_gate

echo "==> bench gate (median of $runs runs, tolerance ${tolerance}%)"
./target/release/bench_gate check \
    --baseline BENCH_experiments.json \
    --runs "$runs" \
    --tolerance "$tolerance" \
    --report "$artifacts/bench-comparison.json"

echo "bench gate passed; report at $artifacts/bench-comparison.json"
