//! Fabric-Centric Computing (FCC) — a reproduction of the HotOS '23 paper.
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation core.
//! * [`proto`] — CXL Flex Bus protocol model (flits, channels, layers).
//! * [`fabric`] — switches, adapters, routing, credit-based flow control,
//!   the central arbiter, and the communication-fabric baseline.
//! * [`sched`] — fabric-resident multi-tenant QoS scheduling: hierarchical
//!   credit partitioning, admission control, and verified tenant ledgers.
//! * [`memnode`] — fabric-attached memory node models (CPU-less NUMA,
//!   CC-NUMA, non-CC NUMA, COMA).
//! * [`cache`] — host memory hierarchy and pipeline stall accounting.
//! * [`unifabric`] — the paper's contribution: the UniFabric runtime
//!   (elastic transactions, unified heap, idempotent tasks, scalable
//!   functions, arbiter client).
//! * [`baseband`] — the MIMO baseband case study from §5 of the paper.
//! * [`workloads`] — workload and fault-injection generators.
//!
//! # Examples
//!
//! ```
//! use fcc::sim::Engine;
//!
//! let engine = Engine::new(42);
//! assert_eq!(engine.now().as_ns(), 0.0);
//! ```

#![forbid(unsafe_code)]
pub use fcc_baseband as baseband;
pub use fcc_cache as cache;
pub use fcc_core as unifabric;
pub use fcc_fabric as fabric;
pub use fcc_memnode as memnode;
pub use fcc_proto as proto;
pub use fcc_sched as sched;
pub use fcc_sim as sim;
pub use fcc_workloads as workloads;
